use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Phase, TraceGeometry};

/// Error returned when a [`BenchmarkSpec`] violates its invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    benchmark: String,
    detail: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid benchmark spec `{}`: {}", self.benchmark, self.detail)
    }
}

impl std::error::Error for SpecError {}

/// A complete synthetic benchmark: named phases plus a schedule that lays
/// the phases out over the trace.
///
/// The schedule is resolution-independent: it is a pattern of phase indices
/// that is stretched over however many intervals the [`TraceGeometry`] in
/// use defines, so the same spec works at test scale and full scale.
///
/// # Example
///
/// ```
/// use mppm_trace::{BenchmarkSpec, Phase, Region, TraceGeometry};
///
/// let spec = BenchmarkSpec::new(
///     "toy",
///     42,
///     vec![Phase {
///         mem_ratio: 0.25,
///         store_ratio: 0.3,
///         base_cpi: 0.5,
///         mlp: 2.0,
///         regions: vec![Region::uniform(0, 512, 1.0)],
///     }],
///     vec![0],
/// )?;
/// let g = TraceGeometry::default();
/// assert_eq!(spec.phase_for_interval(0, g.intervals), 0);
/// # Ok::<(), mppm_trace::SpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    name: String,
    seed: u64,
    phases: Vec<Phase>,
    schedule: Vec<usize>,
}

impl BenchmarkSpec {
    /// Creates and validates a spec.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the spec has no phases, the schedule is
    /// empty or references a phase that does not exist, or any phase fails
    /// its own validation.
    pub fn new(
        name: impl Into<String>,
        seed: u64,
        phases: Vec<Phase>,
        schedule: Vec<usize>,
    ) -> Result<Self, SpecError> {
        let name = name.into();
        let err = |detail: String| SpecError { benchmark: name.clone(), detail };
        if phases.is_empty() {
            return Err(err("no phases".into()));
        }
        if schedule.is_empty() {
            return Err(err("empty schedule".into()));
        }
        for (i, p) in phases.iter().enumerate() {
            p.validate().map_err(|e| err(format!("phase {i}: {e}")))?;
        }
        for &s in &schedule {
            if s >= phases.len() {
                return Err(err(format!(
                    "schedule references phase {s} but there are only {} phases",
                    phases.len()
                )));
            }
        }
        Ok(Self { name, seed, phases, schedule })
    }

    /// Benchmark name (unique within a suite).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// RNG seed making the generated stream deterministic.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The benchmark's phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The schedule pattern (phase index per pattern slot).
    pub fn schedule(&self) -> &[usize] {
        &self.schedule
    }

    /// Phase index active during `interval` when the trace is divided into
    /// `total_intervals` intervals. The schedule pattern is stretched
    /// proportionally over the trace.
    ///
    /// # Panics
    ///
    /// Panics if `interval >= total_intervals` or `total_intervals == 0`.
    pub fn phase_for_interval(&self, interval: u32, total_intervals: u32) -> usize {
        assert!(total_intervals > 0, "total_intervals must be positive");
        assert!(interval < total_intervals, "interval out of range");
        let slot =
            (u64::from(interval) * self.schedule.len() as u64) / u64::from(total_intervals);
        self.schedule[slot as usize]
    }

    /// The phase active during `interval` of `geometry`.
    pub fn phase_at(&self, interval: u32, geometry: TraceGeometry) -> &Phase {
        &self.phases[self.phase_for_interval(interval, geometry.intervals)]
    }

    /// Largest footprint over all phases, in blocks: an upper bound on the
    /// program's instantaneous working-set size.
    pub fn max_footprint_blocks(&self) -> u64 {
        self.phases.iter().map(Phase::footprint_blocks).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Region;

    fn phase(blocks: u64) -> Phase {
        Phase {
            mem_ratio: 0.3,
            store_ratio: 0.2,
            base_cpi: 0.5,
            mlp: 1.5,
            regions: vec![Region::uniform(0, blocks, 1.0)],
        }
    }

    #[test]
    fn schedule_stretches_over_intervals() {
        let spec =
            BenchmarkSpec::new("s", 1, vec![phase(10), phase(20)], vec![0, 1]).unwrap();
        // 10 intervals: first 5 use phase 0, last 5 phase 1.
        for i in 0..5 {
            assert_eq!(spec.phase_for_interval(i, 10), 0, "interval {i}");
        }
        for i in 5..10 {
            assert_eq!(spec.phase_for_interval(i, 10), 1, "interval {i}");
        }
    }

    #[test]
    fn schedule_with_uneven_stretch() {
        let spec =
            BenchmarkSpec::new("s", 1, vec![phase(10), phase(20)], vec![0, 1, 0]).unwrap();
        let picks: Vec<usize> = (0..7).map(|i| spec.phase_for_interval(i, 7)).collect();
        // pattern [0,1,0] over 7 intervals: slots 0..3->0, 3..5->1, 5..7->0
        assert_eq!(picks, vec![0, 0, 0, 1, 1, 0, 0]);
    }

    #[test]
    fn rejects_bad_schedule_reference() {
        let e = BenchmarkSpec::new("s", 1, vec![phase(10)], vec![0, 1]).unwrap_err();
        assert!(e.to_string().contains("references phase 1"));
    }

    #[test]
    fn rejects_empty() {
        assert!(BenchmarkSpec::new("s", 1, vec![], vec![0]).is_err());
        assert!(BenchmarkSpec::new("s", 1, vec![phase(10)], vec![]).is_err());
    }

    #[test]
    fn max_footprint_takes_max_over_phases() {
        let spec =
            BenchmarkSpec::new("s", 1, vec![phase(10), phase(20)], vec![0, 1]).unwrap();
        assert_eq!(spec.max_footprint_blocks(), 20);
    }

    #[test]
    fn serde_round_trip() {
        let spec = BenchmarkSpec::new("s", 7, vec![phase(10)], vec![0]).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back: BenchmarkSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
