//! The synthetic benchmark suite standing in for SPEC CPU2006.
//!
//! The paper evaluates all 29 SPEC CPU2006 benchmarks. This module defines
//! 29 synthetic counterparts, named after their SPEC inspirations, with
//! parameters chosen to reproduce the *qualitative* cast of the paper's
//! evaluation on the baseline machine (Tables 1 and 2, LLC config #1 =
//! 512KB, 8-way):
//!
//! * `gamess` is by far the most cache-sensitive program: its dominant
//!   working set fits the shared LLC when run alone but is evicted under
//!   sharing (paper §6 reports a 2.2× slowdown).
//! * `gobmk` is the second most sensitive (1.3×), followed by `soplex`,
//!   `omnetpp`, `h264ref` and `xalancbmk` (~1.2×).
//! * A compute-bound group (`hmmer`, `povray`, ...) is essentially
//!   insensitive to cache sharing.
//! * A streaming/memory-bound group (`lbm`, `libquantum`, `mcf`, ...) has
//!   a large isolated memory CPI and high LLC access frequency — these
//!   programs *cause* contention more than they suffer from it.
//!
//! Sizes are expressed in 64-byte cache blocks. The relevant capacities on
//! the baseline machine are: L1D = 512 blocks, private L2 = 4096 blocks,
//! shared LLC = 8192 blocks (config #1) up to 32768 blocks (config #6).

use std::collections::BTreeMap;
use std::sync::OnceLock;

use crate::{BenchmarkSpec, Phase, Region};

/// Number of benchmarks in the suite (matches SPEC CPU2006).
pub const SUITE_SIZE: usize = 29;

/// Region id conventions used by the suite.
const HOT: u32 = 0;
const MID: u32 = 1;
const STREAM: u32 = 2;

fn phase(
    mem_ratio: f64,
    store_ratio: f64,
    base_cpi: f64,
    mlp: f64,
    regions: Vec<Region>,
) -> Phase {
    Phase { mem_ratio, store_ratio, base_cpi, mlp, regions }
}

/// A compute-bound benchmark: a hot, cache-resident working set plus a tiny
/// streaming leak so the memory CPI is small but nonzero.
fn compute_bound(
    name: &str,
    seed: u64,
    hot_blocks: u64,
    mem_ratio: f64,
    base_cpi: f64,
    leak: f64,
) -> BenchmarkSpec {
    let p = phase(
        mem_ratio,
        0.30,
        base_cpi,
        2.0,
        vec![
            Region::uniform(HOT, hot_blocks, 1.0 - leak),
            Region::stream(STREAM, 2_000_000, leak),
        ],
    );
    BenchmarkSpec::new(name, seed, vec![p], vec![0]).expect("suite spec is valid")
}

/// An LLC-resident benchmark: the `mid` working set fits the shared LLC in
/// isolation but not under sharing — the cache-sensitive class.
#[allow(clippy::too_many_arguments)]
fn llc_resident(
    name: &str,
    seed: u64,
    mid_blocks: u64,
    mid_weight: f64,
    stream_weight: f64,
    mem_ratio: f64,
    base_cpi: f64,
    mlp: f64,
) -> BenchmarkSpec {
    let hot_weight = 1.0 - mid_weight - stream_weight;
    assert!(hot_weight > 0.0);
    let mut regions = vec![
        Region::uniform(HOT, 400, hot_weight),
        Region::uniform(MID, mid_blocks, mid_weight),
    ];
    if stream_weight > 0.0 {
        regions.push(Region::stream(STREAM, 3_000_000, stream_weight));
    }
    let p = phase(mem_ratio, 0.25, base_cpi, mlp, regions);
    BenchmarkSpec::new(name, seed, vec![p], vec![0]).expect("suite spec is valid")
}

/// A streaming, memory-bound benchmark: large sequential scans with high
/// memory-level parallelism. High LLC access frequency, high isolated memory
/// CPI, low *relative* sensitivity to sharing.
fn streaming(
    name: &str,
    seed: u64,
    stream_blocks: u64,
    stream_weight: f64,
    mem_ratio: f64,
    base_cpi: f64,
    mlp: f64,
) -> BenchmarkSpec {
    let p = phase(
        mem_ratio,
        0.30,
        base_cpi,
        mlp,
        vec![
            Region::uniform(HOT, 600, 1.0 - stream_weight),
            Region::stream(STREAM, stream_blocks, stream_weight),
        ],
    );
    BenchmarkSpec::new(name, seed, vec![p], vec![0]).expect("suite spec is valid")
}

/// A capacity-bound benchmark: a uniformly referenced working set larger
/// than any LLC configuration, producing a flat stack-distance profile.
fn capacity(
    name: &str,
    seed: u64,
    blocks: u64,
    big_weight: f64,
    mem_ratio: f64,
    base_cpi: f64,
    mlp: f64,
) -> BenchmarkSpec {
    let p = phase(
        mem_ratio,
        0.25,
        base_cpi,
        mlp,
        vec![
            Region::uniform(HOT, 500, 1.0 - big_weight),
            Region::uniform(MID, blocks, big_weight),
        ],
    );
    BenchmarkSpec::new(name, seed, vec![p], vec![0]).expect("suite spec is valid")
}

fn build_suite() -> Vec<BenchmarkSpec> {
    let mut v: Vec<BenchmarkSpec> = Vec::with_capacity(SUITE_SIZE);

    // --- compute-bound group (8) -------------------------------------
    v.push(compute_bound("hmmer", 0xC0_01, 350, 0.20, 0.55, 0.004));
    v.push(compute_bound("povray", 0xC0_02, 150, 0.15, 0.60, 0.003));
    v.push(compute_bound("sjeng", 0xC0_03, 700, 0.20, 0.50, 0.006));
    v.push(compute_bound("tonto", 0xC0_04, 500, 0.22, 0.45, 0.005));
    v.push(compute_bound("gromacs", 0xC0_05, 900, 0.22, 0.40, 0.006));
    v.push(compute_bound("namd", 0xC0_06, 800, 0.20, 0.42, 0.005));
    v.push(compute_bound("calculix", 0xC0_07, 1200, 0.20, 0.48, 0.007));
    // perlbench alternates two compute phases with different intensity.
    {
        let p0 = phase(
            0.25,
            0.30,
            0.45,
            2.0,
            vec![Region::uniform(HOT, 400, 0.994), Region::stream(STREAM, 2_000_000, 0.006)],
        );
        let p1 = phase(
            0.20,
            0.30,
            0.60,
            2.0,
            vec![Region::uniform(HOT, 900, 0.995), Region::stream(STREAM, 2_000_000, 0.005)],
        );
        v.push(
            BenchmarkSpec::new("perlbench", 0xC0_08, vec![p0, p1], vec![0, 1, 0, 1])
                .expect("suite spec is valid"),
        );
    }

    // --- LLC-resident, cache-sensitive group (10) ---------------------
    // Calibrated against the detailed simulator so the paper's sensitivity
    // ranking holds on config #1: gamess ≈ 2.2× worst-case slowdown, gobmk
    // ≈ 1.3×, the rest of the class ≈ 1.1–1.2×.
    //
    // gamess: the paper's stress case. Dominant 6500-block set fits the
    // 8192-block LLC alone; almost no isolated misses; low MLP makes each
    // conflict miss expensive.
    v.push(llc_resident("gamess", 0xA0_01, 6500, 0.035, 0.002, 0.30, 0.35, 1.8));
    v.push(llc_resident("gobmk", 0xA0_02, 5200, 0.024, 0.004, 0.22, 0.50, 2.0));
    v.push(llc_resident("h264ref", 0xA0_03, 5000, 0.015, 0.008, 0.25, 0.45, 2.0));
    v.push(llc_resident("dealII", 0xA0_04, 4800, 0.008, 0.006, 0.25, 0.48, 2.2));
    v.push(llc_resident("astar", 0xA0_05, 5600, 0.011, 0.006, 0.26, 0.45, 1.8));
    v.push(llc_resident("bzip2", 0xA0_06, 4600, 0.010, 0.010, 0.24, 0.50, 2.5));
    v.push(llc_resident("xalancbmk", 0xA0_07, 5400, 0.024, 0.015, 0.28, 0.45, 2.5));
    v.push(llc_resident("omnetpp", 0xA0_08, 6200, 0.024, 0.020, 0.30, 0.42, 2.0));
    v.push(llc_resident("soplex", 0xA0_09, 5800, 0.036, 0.030, 0.32, 0.45, 3.5));
    // gcc: three phases — compute, LLC-resident, and a streaming sweep.
    {
        let p0 = phase(
            0.22,
            0.30,
            0.50,
            2.0,
            vec![Region::uniform(HOT, 800, 0.995), Region::stream(STREAM, 2_000_000, 0.005)],
        );
        let p1 = phase(
            0.27,
            0.25,
            0.45,
            2.0,
            vec![
                Region::uniform(HOT, 400, 0.95),
                Region::uniform(MID, 6000, 0.03),
                Region::stream(STREAM, 2_000_000, 0.02),
            ],
        );
        let p2 = phase(
            0.30,
            0.30,
            0.40,
            4.0,
            vec![Region::uniform(HOT, 400, 0.90), Region::stream(STREAM, 3_000_000, 0.10)],
        );
        v.push(
            BenchmarkSpec::new("gcc", 0xA0_0A, vec![p0, p1, p2], vec![0, 1, 2, 1, 0])
                .expect("suite spec is valid"),
        );
    }

    // --- streaming, memory-bound group (7) -----------------------------
    v.push(streaming("lbm", 0xB0_01, 4_000_000, 0.100, 0.35, 0.40, 8.0));
    v.push(streaming("libquantum", 0xB0_02, 3_000_000, 0.080, 0.30, 0.45, 8.0));
    v.push(streaming("leslie3d", 0xB0_03, 1_500_000, 0.070, 0.30, 0.45, 5.0));
    v.push(streaming("GemsFDTD", 0xB0_04, 2_500_000, 0.075, 0.33, 0.42, 4.0));
    // milc adds an LLC-resident component, so it is mildly sensitive too.
    {
        let p = phase(
            0.30,
            0.30,
            0.45,
            5.0,
            vec![
                Region::uniform(HOT, 600, 0.875),
                Region::uniform(MID, 7000, 0.025),
                Region::stream(STREAM, 1_500_000, 0.10),
            ],
        );
        v.push(BenchmarkSpec::new("milc", 0xB0_05, vec![p], vec![0]).expect("suite spec is valid"));
    }
    // bwaves alternates a streaming sweep with a quieter compute phase.
    {
        let p0 = phase(
            0.32,
            0.30,
            0.42,
            6.0,
            vec![Region::uniform(HOT, 600, 0.91), Region::stream(STREAM, 2_000_000, 0.09)],
        );
        let p1 = phase(
            0.22,
            0.30,
            0.50,
            3.0,
            vec![Region::uniform(HOT, 1000, 0.99), Region::stream(STREAM, 2_000_000, 0.01)],
        );
        v.push(
            BenchmarkSpec::new("bwaves", 0xB0_06, vec![p0, p1], vec![0, 1, 0, 1, 0])
                .expect("suite spec is valid"),
        );
    }
    // zeusmp: two streaming phases of different intensity.
    {
        let p0 = phase(
            0.27,
            0.30,
            0.45,
            5.0,
            vec![Region::uniform(HOT, 800, 0.93), Region::stream(STREAM, 1_200_000, 0.07)],
        );
        let p1 = phase(
            0.25,
            0.30,
            0.50,
            4.0,
            vec![Region::uniform(HOT, 800, 0.96), Region::stream(STREAM, 1_200_000, 0.04)],
        );
        v.push(
            BenchmarkSpec::new("zeusmp", 0xB0_07, vec![p0, p1], vec![0, 1])
                .expect("suite spec is valid"),
        );
    }

    // --- capacity-bound group (4) --------------------------------------
    // mcf: pointer-chasing over a huge set; very low MLP.
    v.push(capacity("mcf", 0xD0_01, 250_000, 0.065, 0.35, 0.40, 1.6));
    // sphinx3/cactusADM/wrf: working sets a small multiple of the LLC, so
    // larger LLC configs capture noticeably more of them (the design-space
    // studies in §5 exercise exactly this), while the resident fraction on
    // config #1 is small enough that sharing costs them < 20%.
    v.push(capacity("sphinx3", 0xD0_02, 40_000, 0.080, 0.30, 0.45, 3.0));
    v.push(capacity("cactusADM", 0xD0_03, 50_000, 0.075, 0.30, 0.45, 2.5));
    {
        let p0 = phase(
            0.28,
            0.25,
            0.45,
            3.0,
            vec![Region::uniform(HOT, 500, 0.93), Region::uniform(MID, 35_000, 0.07)],
        );
        let p1 = phase(
            0.24,
            0.25,
            0.50,
            3.0,
            vec![Region::uniform(HOT, 500, 0.97), Region::uniform(MID, 35_000, 0.03)],
        );
        v.push(
            BenchmarkSpec::new("wrf", 0xD0_04, vec![p0, p1], vec![0, 1, 0])
                .expect("suite spec is valid"),
        );
    }

    assert_eq!(v.len(), SUITE_SIZE, "suite must contain exactly {SUITE_SIZE} benchmarks");
    v.sort_by(|a, b| a.name().cmp(b.name()));
    v
}

/// The full 29-benchmark suite, in alphabetical order by name.
pub fn spec_suite() -> &'static [BenchmarkSpec] {
    static SUITE: OnceLock<Vec<BenchmarkSpec>> = OnceLock::new();
    SUITE.get_or_init(build_suite)
}

/// Looks a benchmark up by name.
///
/// # Example
///
/// ```
/// let gamess = mppm_trace::suite::benchmark("gamess").unwrap();
/// assert_eq!(gamess.name(), "gamess");
/// assert!(mppm_trace::suite::benchmark("nonexistent").is_none());
/// ```
pub fn benchmark(name: &str) -> Option<&'static BenchmarkSpec> {
    static INDEX: OnceLock<BTreeMap<&'static str, &'static BenchmarkSpec>> = OnceLock::new();
    INDEX
        .get_or_init(|| spec_suite().iter().map(|s| (s.name(), s)).collect())
        .get(name)
        .copied()
}

/// All benchmark names, in suite order.
pub fn names() -> Vec<&'static str> {
    spec_suite().iter().map(|s| s.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_has_29_unique_benchmarks() {
        let suite = spec_suite();
        assert_eq!(suite.len(), SUITE_SIZE);
        let names: HashSet<_> = suite.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), SUITE_SIZE, "names are unique");
    }

    #[test]
    fn seeds_are_unique() {
        let seeds: HashSet<_> = spec_suite().iter().map(|s| s.seed()).collect();
        assert_eq!(seeds.len(), SUITE_SIZE, "every benchmark has its own seed");
    }

    #[test]
    fn all_specs_validate() {
        // BenchmarkSpec::new validates; re-run the phase validators anyway.
        for s in spec_suite() {
            for p in s.phases() {
                p.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        for s in spec_suite() {
            assert_eq!(benchmark(s.name()).unwrap().name(), s.name());
        }
        assert!(benchmark("spec2017").is_none());
    }

    #[test]
    fn suite_is_sorted() {
        let names = names();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn gamess_fits_llc_alone() {
        // gamess's dominant set must fit config #1's 8192-block LLC but be
        // (much) larger than the 4096-block private L2 — that is what makes
        // it the stress benchmark.
        let g = benchmark("gamess").unwrap();
        let mid = g.phases()[0]
            .regions
            .iter()
            .find(|r| r.id == super::MID)
            .expect("gamess has a mid region");
        assert!(mid.blocks > 4096, "beyond the private L2");
        assert!(mid.blocks + 400 < 8192, "fits the smallest LLC alone");
    }

    #[test]
    fn suite_covers_phase_behavior() {
        let multi_phase = spec_suite().iter().filter(|s| s.phases().len() > 1).count();
        assert!(multi_phase >= 5, "at least 5 benchmarks have time-varying phases");
    }

    #[test]
    fn streams_are_deterministic_per_benchmark() {
        use crate::{TraceGeometry, TraceStream};
        let g = TraceGeometry::tiny();
        for s in spec_suite().iter().take(4) {
            let mut a = TraceStream::new(s.clone(), g);
            let mut b = TraceStream::new(s.clone(), g);
            for _ in 0..200 {
                assert_eq!(a.next_item(), b.next_item(), "{}", s.name());
            }
        }
    }
}
