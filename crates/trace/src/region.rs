use serde::{Deserialize, Serialize};

/// How a region's blocks are referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Every access picks a uniformly random block in the region.
    ///
    /// Under LRU this yields reuse distances concentrated around the region
    /// size: the region hits in any cache level whose capacity exceeds the
    /// region and misses in smaller ones, which is the knob the suite uses
    /// to place working sets between cache levels.
    Uniform,
    /// Accesses walk the region sequentially, wrapping at the end.
    ///
    /// For regions larger than the cache this produces a pure streaming
    /// (always-miss) reference pattern with high memory-level parallelism.
    Stream,
}

/// A contiguous set of cache blocks referenced with one pattern.
///
/// Regions with the same [`Region::id`] alias the same storage across
/// phases (a program whose phases revisit the same data), while distinct
/// ids are disjoint address ranges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Identifier selecting the region's base address (`id << 32` blocks).
    pub id: u32,
    /// Reference pattern.
    pub kind: RegionKind,
    /// Region size in cache blocks. Must be ≥ 1.
    pub blocks: u64,
    /// Relative probability that an access goes to this region (normalized
    /// against the other regions of the phase). Must be > 0.
    pub weight: f64,
}

impl Region {
    /// Maximum representable region size in blocks (regions are spaced
    /// `1 << 32` blocks apart).
    pub const MAX_BLOCKS: u64 = 1 << 32;

    /// Maximum region id. Keeps every block id below `1 << 44`, the bit
    /// range multi-core simulators use to tag per-program address spaces.
    pub const MAX_ID: u32 = (1 << 12) - 1;

    /// A uniformly-referenced region.
    pub fn uniform(id: u32, blocks: u64, weight: f64) -> Self {
        Self { id, kind: RegionKind::Uniform, blocks, weight }
    }

    /// A sequentially-streamed region.
    pub fn stream(id: u32, blocks: u64, weight: f64) -> Self {
        Self { id, kind: RegionKind::Stream, blocks, weight }
    }

    /// First block of the region in the program's private block space.
    pub fn base_block(&self) -> u64 {
        u64::from(self.id) << 32
    }

    /// Checks the structural invariants (`blocks ≥ 1`, `0 < weight`, size
    /// within bounds), returning a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.id > Self::MAX_ID {
            return Err(format!(
                "region id {} exceeds the maximum {} (block ids must stay below 2^44)",
                self.id,
                Self::MAX_ID
            ));
        }
        if self.blocks == 0 {
            return Err(format!("region {} has zero blocks", self.id));
        }
        if self.blocks > Self::MAX_BLOCKS {
            return Err(format!(
                "region {} has {} blocks, above the maximum {}",
                self.id,
                self.blocks,
                Self::MAX_BLOCKS
            ));
        }
        if !self.weight.is_finite() || self.weight <= 0.0 {
            return Err(format!("region {} has non-positive weight {}", self.id, self.weight));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bases_do_not_overlap() {
        let a = Region::uniform(0, Region::MAX_BLOCKS, 1.0);
        let b = Region::uniform(1, Region::MAX_BLOCKS, 1.0);
        assert!(a.base_block() + a.blocks <= b.base_block());
    }

    #[test]
    fn validate_rejects_bad_regions() {
        assert!(Region::uniform(0, 0, 1.0).validate().is_err());
        assert!(Region::uniform(0, 10, 0.0).validate().is_err());
        assert!(Region::uniform(0, 10, f64::NAN).validate().is_err());
        assert!(Region::uniform(0, Region::MAX_BLOCKS + 1, 1.0).validate().is_err());
        assert!(Region::stream(3, 1000, 0.5).validate().is_ok());
        // Region ids must stay below the simulator's per-program tag bits.
        assert!(Region::uniform(Region::MAX_ID, 10, 1.0).validate().is_ok());
        assert!(Region::uniform(Region::MAX_ID + 1, 10, 1.0).validate().is_err());
    }
}
