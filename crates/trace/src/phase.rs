use serde::{Deserialize, Serialize};

use crate::Region;

/// One execution phase of a benchmark.
///
/// A phase fixes the statistical character of the instruction stream for the
/// intervals it is scheduled on: the memory instruction mix, the core-side
/// CPI with a perfect memory hierarchy, the amount of memory-level
/// parallelism available to overlap miss stalls, and the mixture of memory
/// regions being referenced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Fraction of instructions that perform a memory access, in `(0, 1)`.
    pub mem_ratio: f64,
    /// Fraction of memory accesses that are stores, in `[0, 1)`.
    pub store_ratio: f64,
    /// Cycles per instruction with a perfect memory hierarchy (> 0). A
    /// 4-wide out-of-order core sustains 0.25 at best; realistic values for
    /// the modeled core are 0.3–1.0.
    pub base_cpi: f64,
    /// Memory-level parallelism: the number of outstanding misses whose
    /// latency overlaps (≥ 1). Miss stalls are divided by this factor.
    pub mlp: f64,
    /// Weighted mixture of referenced regions. Must be non-empty.
    pub regions: Vec<Region>,
}

impl Phase {
    /// Checks the structural invariants, returning the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.mem_ratio > 0.0 && self.mem_ratio < 1.0) {
            return Err(format!("mem_ratio {} outside (0, 1)", self.mem_ratio));
        }
        if !(0.0..1.0).contains(&self.store_ratio) {
            return Err(format!("store_ratio {} outside [0, 1)", self.store_ratio));
        }
        if !self.base_cpi.is_finite() || self.base_cpi <= 0.0 {
            return Err(format!("base_cpi {} must be positive", self.base_cpi));
        }
        if !self.mlp.is_finite() || self.mlp < 1.0 {
            return Err(format!("mlp {} must be >= 1", self.mlp));
        }
        if self.regions.is_empty() {
            return Err("phase has no regions".to_string());
        }
        for r in &self.regions {
            r.validate()?;
        }
        let mut seen = std::collections::BTreeSet::new();
        for r in &self.regions {
            if !seen.insert(r.id) {
                return Err(format!("phase references region id {} twice", r.id));
            }
        }
        Ok(())
    }

    /// Total weight over all regions.
    pub fn total_weight(&self) -> f64 {
        self.regions.iter().map(|r| r.weight).sum()
    }

    /// Total distinct working-set size of the phase, in blocks.
    pub fn footprint_blocks(&self) -> u64 {
        self.regions.iter().map(|r| r.blocks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Region;

    fn valid_phase() -> Phase {
        Phase {
            mem_ratio: 0.3,
            store_ratio: 0.3,
            base_cpi: 0.4,
            mlp: 2.0,
            regions: vec![Region::uniform(0, 100, 0.8), Region::stream(1, 10_000, 0.2)],
        }
    }

    #[test]
    fn valid_phase_passes() {
        assert!(valid_phase().validate().is_ok());
        assert!((valid_phase().total_weight() - 1.0).abs() < 1e-12);
        assert_eq!(valid_phase().footprint_blocks(), 10_100);
    }

    #[test]
    fn rejects_bad_mem_ratio() {
        let mut p = valid_phase();
        p.mem_ratio = 0.0;
        assert!(p.validate().is_err());
        p.mem_ratio = 1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_bad_mlp_and_cpi() {
        let mut p = valid_phase();
        p.mlp = 0.5;
        assert!(p.validate().is_err());
        let mut p = valid_phase();
        p.base_cpi = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_duplicate_region_ids() {
        let mut p = valid_phase();
        p.regions.push(Region::uniform(0, 5, 0.1));
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_empty_regions() {
        let mut p = valid_phase();
        p.regions.clear();
        assert!(p.validate().is_err());
    }
}
