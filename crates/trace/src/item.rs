use crate::LINE_SHIFT;

/// A single memory access emitted by a trace stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Cache-block identifier within the program's private address space.
    ///
    /// Multiply by [`crate::LINE_BYTES`] (or shift by [`crate::LINE_SHIFT`])
    /// for a byte address. Multi-core simulators must additionally tag the
    /// block with a program identifier because multi-program workloads share
    /// no data.
    pub block: u64,
    /// `true` for a store, `false` for a load.
    pub store: bool,
}

impl MemAccess {
    /// Byte address of the first byte of the accessed block.
    pub fn byte_addr(&self) -> u64 {
        self.block << LINE_SHIFT
    }
}

/// One unit of work in an instruction stream.
///
/// Streams interleave batches of non-memory instructions with individual
/// memory-accessing instructions. A [`TraceItem::Access`] accounts for
/// exactly one instruction; a [`TraceItem::Compute`] accounts for
/// `insns` instructions that touch no memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceItem {
    /// A run of `insns` instructions with no memory access.
    Compute {
        /// Number of instructions in the batch (always ≥ 1).
        insns: u32,
    },
    /// A single instruction performing one memory access.
    Access(MemAccess),
}

impl TraceItem {
    /// Number of instructions this item accounts for.
    pub fn insns(&self) -> u64 {
        match self {
            TraceItem::Compute { insns } => u64::from(*insns),
            TraceItem::Access(_) => 1,
        }
    }

    /// The memory access, if this item is one.
    pub fn access(&self) -> Option<MemAccess> {
        match self {
            TraceItem::Compute { .. } => None,
            TraceItem::Access(a) => Some(*a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_addr_shifts_by_line_size() {
        let a = MemAccess { block: 3, store: false };
        assert_eq!(a.byte_addr(), 3 * 64);
    }

    #[test]
    fn insns_accounting() {
        assert_eq!(TraceItem::Compute { insns: 17 }.insns(), 17);
        let acc = TraceItem::Access(MemAccess { block: 0, store: true });
        assert_eq!(acc.insns(), 1);
        assert!(acc.access().unwrap().store);
        assert!(TraceItem::Compute { insns: 1 }.access().is_none());
    }
}
