//! Recorded traces: capture one pass of an instruction stream into a
//! compact binary buffer and replay it without regenerating.
//!
//! Two uses:
//!
//! * **External traces.** The synthetic suite stands in for SPEC CPU2006,
//!   but users with real address traces (from Pin, DynamoRIO, QEMU, ...)
//!   can convert them to [`RecordedTrace`]s and drive the simulator and
//!   profiler with production behavior.
//! * **Archival reproducibility.** A recorded trace pins the exact item
//!   sequence independent of the generator's RNG implementation, so
//!   results can be reproduced across versions.
//!
//! The binary format is little-endian: a 16-byte header (magic,
//! version, item count) followed by one `u64` per item — the two top bits
//! tag the kind (`00` compute, `01` load, `10` store) and the low 62 bits
//! carry the payload (batch length or block id).

use bytes::{Buf, BufMut};

use crate::{MemAccess, TraceItem};

/// Magic bytes introducing a recorded-trace buffer.
pub const MAGIC: [u8; 4] = *b"MPPM";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

const TAG_SHIFT: u32 = 62;
const TAG_COMPUTE: u64 = 0b00;
const TAG_LOAD: u64 = 0b01;
const TAG_STORE: u64 = 0b10;
const PAYLOAD_MASK: u64 = (1 << TAG_SHIFT) - 1;

/// Error decoding a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// Buffer too short or missing trailing items.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Unknown item tag at the given index.
    BadTag(usize),
    /// A compute batch with zero instructions at the given index.
    EmptyBatch(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer is truncated"),
            DecodeError::BadMagic => write!(f, "missing MPPM trace magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::BadTag(i) => write!(f, "unknown item tag at index {i}"),
            DecodeError::EmptyBatch(i) => write!(f, "empty compute batch at index {i}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// An immutable, replayable sequence of trace items.
///
/// # Example
///
/// ```
/// use mppm_trace::{suite, RecordedTrace, TraceGeometry, TraceStream};
///
/// let geometry = TraceGeometry::tiny();
/// let mut stream = TraceStream::new(suite::benchmark("mcf").unwrap().clone(), geometry);
/// let recorded = RecordedTrace::capture(&mut stream, geometry.trace_insns());
/// assert_eq!(recorded.insns(), geometry.trace_insns());
///
/// let bytes = recorded.to_bytes();
/// let back = RecordedTrace::from_bytes(&bytes).unwrap();
/// assert_eq!(recorded, back);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedTrace {
    items: Vec<TraceItem>,
    insns: u64,
}

impl RecordedTrace {
    /// Builds a trace from items.
    ///
    /// # Panics
    ///
    /// Panics if any block id exceeds the 62-bit payload or a compute
    /// batch is empty.
    pub fn new(items: Vec<TraceItem>) -> Self {
        let mut insns = 0;
        for item in &items {
            match item {
                TraceItem::Compute { insns: n } => {
                    assert!(*n > 0, "compute batches must be non-empty");
                }
                TraceItem::Access(a) => {
                    assert!(a.block <= PAYLOAD_MASK, "block id exceeds 62 bits");
                }
            }
            insns += item.insns();
        }
        Self { items, insns }
    }

    /// Captures the next `insns` instructions of a generator.
    ///
    /// The final item may overshoot by the tail of a compute batch; it is
    /// clipped so the recorded length is exact.
    pub fn capture(stream: &mut crate::TraceStream, insns: u64) -> Self {
        let mut items = Vec::new();
        let mut captured = 0;
        while captured < insns {
            let item = stream.next_item();
            let take = item.insns().min(insns - captured);
            match item {
                TraceItem::Compute { .. } => {
                    items.push(TraceItem::Compute {
                        insns: u32::try_from(take).expect("clipped to a u32 batch length"),
                    });
                }
                access => items.push(access),
            }
            captured += take;
        }
        Self::new(items)
    }

    /// The items, in order.
    pub fn items(&self) -> &[TraceItem] {
        &self.items
    }

    /// Total instructions in one replay pass.
    pub fn insns(&self) -> u64 {
        self.insns
    }

    /// Serializes to the binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.items.len() * 8);
        out.put_slice(&MAGIC);
        out.put_u32_le(FORMAT_VERSION);
        out.put_u64_le(self.items.len() as u64);
        for item in &self.items {
            let word = match item {
                TraceItem::Compute { insns } => {
                    (TAG_COMPUTE << TAG_SHIFT) | u64::from(*insns)
                }
                TraceItem::Access(MemAccess { block, store: false }) => {
                    (TAG_LOAD << TAG_SHIFT) | block
                }
                TraceItem::Access(MemAccess { block, store: true }) => {
                    (TAG_STORE << TAG_SHIFT) | block
                }
            };
            out.put_u64_le(word);
        }
        out
    }

    /// Deserializes from the binary format.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] describing the first problem found.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self, DecodeError> {
        if buf.remaining() < 16 {
            return Err(DecodeError::Truncated);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != FORMAT_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let count = buf.get_u64_le() as usize;
        if buf.remaining() < count * 8 {
            return Err(DecodeError::Truncated);
        }
        let mut items = Vec::with_capacity(count);
        for i in 0..count {
            let word = buf.get_u64_le();
            let payload = word & PAYLOAD_MASK;
            let item = match word >> TAG_SHIFT {
                TAG_COMPUTE => {
                    if payload == 0 || payload > u64::from(u32::MAX) {
                        return Err(DecodeError::EmptyBatch(i));
                    }
                    TraceItem::Compute {
                        insns: u32::try_from(payload).expect("range-checked above"),
                    }
                }
                TAG_LOAD => TraceItem::Access(MemAccess { block: payload, store: false }),
                TAG_STORE => TraceItem::Access(MemAccess { block: payload, store: true }),
                _ => return Err(DecodeError::BadTag(i)),
            };
            items.push(item);
        }
        Ok(Self::new(items))
    }

    /// An infinite cyclic replay of the trace.
    pub fn replay(&self) -> Replay<'_> {
        Replay { trace: self, next: 0, wraps: 0, insns_done: 0 }
    }
}

/// Cyclic replay iterator over a [`RecordedTrace`]; the replay-side
/// counterpart of [`crate::TraceStream`].
#[derive(Debug, Clone)]
pub struct Replay<'a> {
    trace: &'a RecordedTrace,
    next: usize,
    wraps: u64,
    insns_done: u64,
}

impl Replay<'_> {
    /// The next item, wrapping at the end of the trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn next_item(&mut self) -> TraceItem {
        assert!(!self.trace.items.is_empty(), "cannot replay an empty trace");
        let item = self.trace.items[self.next];
        self.next += 1;
        if self.next == self.trace.items.len() {
            self.next = 0;
            self.wraps += 1;
        }
        self.insns_done += item.insns();
        item
    }

    /// Total instructions replayed so far.
    pub fn position(&self) -> u64 {
        self.insns_done
    }

    /// Completed passes.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{suite, TraceGeometry, TraceStream};

    fn recorded() -> RecordedTrace {
        let g = TraceGeometry::tiny();
        let mut stream = TraceStream::new(suite::benchmark("gcc").unwrap().clone(), g);
        RecordedTrace::capture(&mut stream, g.trace_insns())
    }

    #[test]
    fn capture_has_exact_length() {
        let g = TraceGeometry::tiny();
        let trace = recorded();
        assert_eq!(trace.insns(), g.trace_insns());
        let total: u64 = trace.items().iter().map(TraceItem::insns).sum();
        assert_eq!(total, g.trace_insns());
    }

    #[test]
    fn round_trip_is_identity() {
        let trace = recorded();
        let bytes = trace.to_bytes();
        let back = RecordedTrace::from_bytes(&bytes).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn replay_matches_items_and_wraps() {
        let trace = recorded();
        let mut replay = trace.replay();
        for item in trace.items() {
            assert_eq!(*item, replay.next_item());
        }
        assert_eq!(replay.wraps(), 1);
        assert_eq!(replay.position(), trace.insns());
        // Second pass identical.
        assert_eq!(trace.items()[0], replay.next_item());
    }

    #[test]
    fn capture_matches_generator_exactly() {
        // Capturing then replaying must equal generating directly,
        // access for access.
        let g = TraceGeometry::tiny();
        let spec = suite::benchmark("milc").unwrap().clone();
        let mut gen_stream = TraceStream::new(spec.clone(), g);
        let trace = {
            let mut s = TraceStream::new(spec, g);
            RecordedTrace::capture(&mut s, g.trace_insns())
        };
        let mut replay = trace.replay();
        let mut replayed_accesses = Vec::new();
        let mut generated_accesses = Vec::new();
        while replay.position() < g.trace_insns() {
            if let Some(a) = replay.next_item().access() {
                replayed_accesses.push(a);
            }
        }
        while gen_stream.position() < g.trace_insns() {
            if let Some(a) = gen_stream.next_item().access() {
                generated_accesses.push(a);
            }
        }
        assert_eq!(replayed_accesses, generated_accesses);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(RecordedTrace::from_bytes(b"xx").unwrap_err(), DecodeError::Truncated);
        assert_eq!(
            RecordedTrace::from_bytes(b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")
                .unwrap_err(),
            DecodeError::BadMagic
        );
        let mut bad_version = recorded().to_bytes();
        bad_version[4] = 99;
        assert_eq!(
            RecordedTrace::from_bytes(&bad_version).unwrap_err(),
            DecodeError::BadVersion(99)
        );
        let mut truncated = recorded().to_bytes();
        truncated.truncate(truncated.len() - 4);
        assert_eq!(RecordedTrace::from_bytes(&truncated).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let trace = RecordedTrace::new(vec![TraceItem::Compute { insns: 1 }]);
        let mut bytes = trace.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 0xC0; // tag 0b11
        assert_eq!(RecordedTrace::from_bytes(&bytes).unwrap_err(), DecodeError::BadTag(0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_batches() {
        RecordedTrace::new(vec![TraceItem::Compute { insns: 0 }]);
    }
}
