//! Synthetic statistical workloads standing in for SPEC CPU2006.
//!
//! The MPPM paper (Van Craeynest & Eeckhout, IISWC 2011) drives both its
//! detailed simulations and its analytical model with 1B-instruction
//! SimPoint traces of the 29 SPEC CPU2006 benchmarks. Neither the binaries
//! nor the traces are redistributable, so this crate implements the closest
//! synthetic equivalent: each benchmark is a *parameterized, deterministic
//! generator* of an instruction/memory-access stream.
//!
//! A [`BenchmarkSpec`] consists of a set of [`Phase`]s scheduled over the
//! intervals of a trace (the paper profiles per 20M-instruction interval; we
//! keep the same 50-intervals-per-trace geometry at a reduced scale, see
//! [`TraceGeometry`]). Each phase fixes:
//!
//! * the fraction of instructions that access memory ([`Phase::mem_ratio`]),
//! * the base CPI with a perfect memory hierarchy ([`Phase::base_cpi`]),
//! * the memory-level parallelism used to overlap miss stalls
//!   ([`Phase::mlp`]), and
//! * a weighted mixture of memory [`Region`]s (uniformly re-referenced
//!   working sets and streaming scans) that shapes the reuse-distance
//!   profile seen by the caches.
//!
//! This preserves exactly the workload properties MPPM depends on:
//! per-interval CPI, memory-CPI fraction, last-level-cache stack-distance
//! profiles, access frequency, and time-varying phase behavior.
//!
//! [`TraceStream`] turns a spec into an infinite, cyclic, deterministic
//! stream of [`TraceItem`]s: the stream re-starts identically each time it
//! wraps past the trace length, which is what the FAME-style re-iteration
//! methodology of multi-program simulation requires.
//!
//! # Example
//!
//! ```
//! use mppm_trace::{suite, TraceGeometry, TraceStream};
//!
//! let geometry = TraceGeometry::default();
//! let spec = suite::benchmark("gamess").expect("gamess is in the suite");
//! let mut stream = TraceStream::new(spec.clone(), geometry);
//! let item = stream.next_item();
//! println!("first item of gamess: {item:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod geometry;
mod item;
mod phase;
mod recorded;
mod region;
mod spec;
mod stream;
pub mod suite;

pub use compile::{CompiledBlock, CompiledTrace, FLAG_ACCESS, FLAG_STORE};
pub use geometry::TraceGeometry;
pub use item::{MemAccess, TraceItem};
pub use phase::Phase;
pub use recorded::{DecodeError, RecordedTrace, Replay};
pub use region::{Region, RegionKind};
pub use spec::{BenchmarkSpec, SpecError};
pub use stream::TraceStream;

/// Cache-line (block) size in bytes used throughout the workspace.
///
/// The paper's machine (Table 1) uses 64-byte lines; generators emit block
/// identifiers, and `block << LINE_SHIFT` is the byte address.
pub const LINE_BYTES: u64 = 64;

/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;
