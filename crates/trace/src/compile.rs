//! Phase compiler: one-shot compilation of a benchmark's trace into flat
//! replayable blocks.
//!
//! A [`crate::Phase`] is a stationary statistical process, so the items it
//! generates can be produced *once* and replayed on every subsequent trace
//! pass instead of re-running the generator (two `ln()` calls per compute
//! gap, three to four RNG draws per access, a cursor walk per stream
//! region). The FAME-style re-iteration methodology makes this a
//! multiplier: every simulated program executes its trace at least twice
//! (warmup plus measurement) and usually more, because finished programs
//! keep re-iterating until the whole mix completes.
//!
//! [`CompiledTrace::compile`] drains a live [`TraceStream`] for exactly
//! one pass and records every item it emits, so the compiled program is
//! bit-identical to the generator *by construction* — including
//! interval-boundary clipping of compute batches, which must be preserved
//! because f64 cycle accumulation is not associative. Items are grouped
//! into one [`CompiledBlock`] per maximal run of same-phase intervals and
//! stored as parallel structure-of-arrays columns (instruction counts,
//! block addresses, access/store flags), so the executor's inner loop
//! walks three contiguous arrays with no RNG, no `BTreeMap`, and one
//! phase-parameter load per *block* instead of per item.
//!
//! Each block also records the generator state at its entry (RNG plus the
//! per-region stream offsets, *ranked into* the checkpoint rather than
//! shared mutably between blocks), making blocks independently
//! regenerable: [`CompiledTrace::regenerate_block`] rebuilds any block
//! from its own checkpoint and must reproduce the front-to-back
//! compilation exactly. That replay-stability is what lets incremental
//! recompilation (and the differential harness) treat blocks as
//! independent units.

use std::sync::Arc;

use crate::stream::StreamCheckpoint;
use crate::{BenchmarkSpec, MemAccess, TraceGeometry, TraceItem, TraceStream};

/// Flag bit set on ops that access memory (clear means a compute batch).
pub const FLAG_ACCESS: u8 = 1 << 0;
/// Flag bit set on memory ops that are stores.
pub const FLAG_STORE: u8 = 1 << 1;

/// One maximal run of same-phase intervals, compiled to flat
/// structure-of-arrays columns.
///
/// Column `i` describes the `i`-th trace item of the block: compute
/// batches have `insn_counts[i]` instructions and a zero flag byte;
/// accesses have a count of 1, the (untagged) block address in
/// `block_ids[i]`, and [`FLAG_ACCESS`] (plus [`FLAG_STORE`] for stores)
/// in `flags[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledBlock {
    phase: usize,
    start_insn: u64,
    end_insn: u64,
    insn_counts: Vec<u32>,
    block_ids: Vec<u64>,
    flags: Vec<u8>,
    entry: StreamCheckpoint,
}

impl CompiledBlock {
    /// Index of the phase every interval of this block runs.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// First instruction of the block within one trace pass.
    pub fn start_insn(&self) -> u64 {
        self.start_insn
    }

    /// First instruction past the block within one trace pass.
    pub fn end_insn(&self) -> u64 {
        self.end_insn
    }

    /// Number of ops (trace items) in the block.
    pub fn len(&self) -> usize {
        self.insn_counts.len()
    }

    /// Whether the block holds no ops (never true for compiled blocks:
    /// every interval generates at least one item).
    pub fn is_empty(&self) -> bool {
        self.insn_counts.is_empty()
    }

    /// Instruction count per op.
    pub fn insn_counts(&self) -> &[u32] {
        &self.insn_counts
    }

    /// Untagged block address per op (zero for compute batches).
    pub fn block_ids(&self) -> &[u64] {
        &self.block_ids
    }

    /// [`FLAG_ACCESS`]/[`FLAG_STORE`] bits per op.
    pub fn flags(&self) -> &[u8] {
        &self.flags
    }

    /// Materializes op `op` back into the [`TraceItem`] the generator
    /// emitted.
    ///
    /// # Panics
    ///
    /// Panics if `op >= self.len()`.
    pub fn item(&self, op: usize) -> TraceItem {
        if self.flags[op] & FLAG_ACCESS == 0 {
            TraceItem::Compute { insns: self.insn_counts[op] }
        } else {
            TraceItem::Access(MemAccess {
                block: self.block_ids[op],
                store: self.flags[op] & FLAG_STORE != 0,
            })
        }
    }
}

/// A benchmark's full trace pass, compiled into per-phase-run
/// [`CompiledBlock`]s.
///
/// Replaying the blocks in order (wrapping back to block 0 after the
/// last) yields exactly the item sequence of a [`TraceStream`] over the
/// same spec and geometry — the stream rewinds to its seed on every wrap,
/// so one compiled pass covers all passes.
///
/// # Example
///
/// ```
/// use mppm_trace::{suite, CompiledTrace, TraceGeometry, TraceStream};
///
/// let g = TraceGeometry::tiny();
/// let spec = suite::benchmark("mcf").unwrap().clone();
/// let compiled = CompiledTrace::compile(spec.clone(), g);
/// let mut stream = TraceStream::new(spec, g);
/// for block in compiled.blocks() {
///     for op in 0..block.len() {
///         assert_eq!(block.item(op), stream.next_item());
///     }
/// }
/// assert_eq!(stream.position(), g.trace_insns());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTrace {
    spec: Arc<BenchmarkSpec>,
    geometry: TraceGeometry,
    blocks: Vec<CompiledBlock>,
}

impl CompiledTrace {
    /// Compiles one full trace pass of `spec` on `geometry`.
    pub fn compile(spec: impl Into<Arc<BenchmarkSpec>>, geometry: TraceGeometry) -> Self {
        let spec = spec.into();
        // Maximal runs of consecutive same-phase intervals; block
        // boundaries are exactly the positions where the phase index
        // changes (plus position 0), which is the contract
        // `StreamCheckpoint` needs to drop the pending-gap remainder.
        let mut runs: Vec<(usize, u64)> = Vec::new();
        for interval in 0..geometry.intervals {
            let phase = spec.phase_for_interval(interval, geometry.intervals);
            let end = geometry.interval_start(interval) + geometry.interval_insns;
            match runs.last_mut() {
                Some((p, e)) if *p == phase => *e = end,
                _ => runs.push((phase, end)),
            }
        }
        let mut stream = TraceStream::new(Arc::clone(&spec), geometry);
        let mut blocks = Vec::with_capacity(runs.len());
        let mut start = 0u64;
        for (phase, end) in runs {
            let entry = stream.checkpoint();
            blocks.push(drain_block(&mut stream, phase, start, end, entry));
            start = end;
        }
        Self { spec, geometry, blocks }
    }

    /// The spec this trace was compiled from.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    /// The geometry the trace is laid out on.
    pub fn geometry(&self) -> TraceGeometry {
        self.geometry
    }

    /// The compiled blocks, in trace order.
    pub fn blocks(&self) -> &[CompiledBlock] {
        &self.blocks
    }

    /// Total ops across all blocks.
    pub fn ops(&self) -> u64 {
        self.blocks.iter().map(|b| b.len() as u64).sum()
    }

    /// Regenerates block `k` from its own entry checkpoint, independent
    /// of every other block.
    ///
    /// Must equal `self.blocks()[k]` exactly (unit-tested below): the
    /// checkpointed RNG and ranked-in stream offsets are the *only*
    /// generator state a block depends on.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn regenerate_block(&self, k: usize) -> CompiledBlock {
        let blk = &self.blocks[k];
        let mut stream = TraceStream::restore_within_pass(
            Arc::clone(&self.spec),
            self.geometry,
            blk.start_insn,
            blk.entry.clone(),
        );
        drain_block(&mut stream, blk.phase, blk.start_insn, blk.end_insn, blk.entry.clone())
    }
}

/// Drains `stream` from `start` (its current position) to `end`,
/// collecting the items into a block's SoA columns.
fn drain_block(
    stream: &mut TraceStream,
    phase: usize,
    start: u64,
    end: u64,
    entry: StreamCheckpoint,
) -> CompiledBlock {
    debug_assert_eq!(stream.position(), start);
    let mut insn_counts = Vec::new();
    let mut block_ids = Vec::new();
    let mut flags = Vec::new();
    while stream.position() < end {
        match stream.next_item() {
            TraceItem::Compute { insns } => {
                insn_counts.push(insns);
                block_ids.push(0);
                flags.push(0);
            }
            TraceItem::Access(a) => {
                insn_counts.push(1);
                block_ids.push(a.block);
                flags.push(FLAG_ACCESS | if a.store { FLAG_STORE } else { 0 });
            }
        }
    }
    // Items never cross interval boundaries, so the drain lands exactly
    // on the block boundary.
    assert_eq!(stream.position(), end, "an item crossed the block boundary");
    CompiledBlock { phase, start_insn: start, end_insn: end, insn_counts, block_ids, flags, entry }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{suite, Phase, Region};

    /// A spec with three phase runs (0, 1, 0) over the tiny geometry,
    /// mixing uniform and stream regions so both RNG draws and stream
    /// cursors are exercised across block boundaries.
    fn phased_spec() -> BenchmarkSpec {
        let heavy = Phase {
            mem_ratio: 0.5,
            store_ratio: 0.3,
            base_cpi: 0.5,
            mlp: 2.0,
            regions: vec![Region::uniform(0, 500, 0.6), Region::stream(1, 200, 0.4)],
        };
        let light = Phase {
            mem_ratio: 0.05,
            store_ratio: 0.0,
            base_cpi: 0.8,
            mlp: 1.0,
            regions: vec![Region::stream(1, 200, 1.0)],
        };
        BenchmarkSpec::new("phased", 42, vec![heavy, light], vec![0, 1, 0]).unwrap()
    }

    #[test]
    fn blocks_tile_the_trace_by_phase_run() {
        let g = TraceGeometry::tiny();
        let compiled = CompiledTrace::compile(phased_spec(), g);
        assert!(compiled.blocks().len() >= 3, "schedule 0,1,0 has three phase runs");
        let mut expected_start = 0;
        for blk in compiled.blocks() {
            assert_eq!(blk.start_insn(), expected_start, "blocks must tile contiguously");
            assert!(blk.end_insn() > blk.start_insn());
            assert_eq!(blk.start_insn() % g.interval_insns, 0);
            // Every interval inside the block runs the block's phase.
            let mut insn = blk.start_insn();
            while insn < blk.end_insn() {
                let spec = compiled.spec();
                assert_eq!(
                    spec.phase_for_interval(g.interval_of(insn), g.intervals),
                    blk.phase()
                );
                insn += g.interval_insns;
            }
            let total: u64 = blk.insn_counts().iter().map(|&n| u64::from(n)).sum();
            assert_eq!(total, blk.end_insn() - blk.start_insn());
            expected_start = blk.end_insn();
        }
        assert_eq!(expected_start, g.trace_insns());
    }

    #[test]
    fn compiled_items_match_the_live_generator() {
        let g = TraceGeometry::tiny();
        for name in ["gamess", "lbm", "mcf", "gcc"] {
            let spec = suite::benchmark(name).unwrap().clone();
            let compiled = CompiledTrace::compile(spec.clone(), g);
            let mut stream = TraceStream::new(spec, g);
            for (b, blk) in compiled.blocks().iter().enumerate() {
                for op in 0..blk.len() {
                    assert_eq!(blk.item(op), stream.next_item(), "{name}: block {b} op {op}");
                }
            }
            assert_eq!(stream.position(), g.trace_insns());
        }
    }

    #[test]
    fn blocks_regenerate_from_their_entry_checkpoints() {
        // The satellite contract: re-running any block from its own
        // checkpoint — an arbitrary mid-trace offset, with the stream
        // offsets ranked in rather than read from a shared cursor — must
        // match the front-to-back compilation bit for bit.
        let g = TraceGeometry::tiny();
        let compiled = CompiledTrace::compile(phased_spec(), g);
        assert!(compiled.blocks().len() > 1);
        for k in (0..compiled.blocks().len()).rev() {
            assert_eq!(
                compiled.regenerate_block(k),
                compiled.blocks()[k],
                "block {k} is not replay-stable"
            );
        }
    }

    #[test]
    fn suite_blocks_are_replay_stable() {
        let g = TraceGeometry::tiny();
        for spec in suite::spec_suite().iter().take(8) {
            let compiled = CompiledTrace::compile(spec.clone(), g);
            for k in 0..compiled.blocks().len() {
                assert_eq!(
                    compiled.regenerate_block(k),
                    compiled.blocks()[k],
                    "{}: block {k}",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn single_phase_trace_compiles_to_one_block() {
        let spec = BenchmarkSpec::new(
            "flat",
            7,
            vec![Phase {
                mem_ratio: 0.3,
                store_ratio: 0.2,
                base_cpi: 0.5,
                mlp: 2.0,
                regions: vec![Region::uniform(0, 100, 1.0)],
            }],
            vec![0],
        )
        .unwrap();
        let g = TraceGeometry::tiny();
        let compiled = CompiledTrace::compile(spec, g);
        assert_eq!(compiled.blocks().len(), 1);
        assert_eq!(compiled.blocks()[0].start_insn(), 0);
        assert_eq!(compiled.blocks()[0].end_insn(), g.trace_insns());
        assert!(compiled.ops() > 0);
    }

    #[test]
    fn compilation_is_deterministic() {
        let g = TraceGeometry::tiny();
        let a = CompiledTrace::compile(phased_spec(), g);
        let b = CompiledTrace::compile(phased_spec(), g);
        assert_eq!(a, b);
    }
}
