//! The event record and its JSONL encoding.
//!
//! Encoding is hand-rolled so the crate stays dependency-free; the
//! format is one JSON object per line with a fixed key order
//! (`seq`, `scope`, `index`, `name`, then the fields in emission
//! order), which keeps the files diffable and trivially strippable in
//! tests.

use std::fmt::Write as _;

/// A field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned counter or identifier.
    U64(u64),
    /// Floating-point measurement (residuals, CPIs, seconds).
    F64(f64),
    /// Boolean flag (e.g. solver convergence).
    Bool(bool),
    /// Short label.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One observability event: a named record anchored to a span scope.
///
/// `(scope, index)` is the canonical order (see the crate docs for the
/// single-writer-per-scope contract that makes it deterministic); `seq`
/// is assigned by the sink after sorting, so it is monotone in the
/// written file.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Full span path, `/`-separated (e.g. `campaign/shard-d0-i0003`).
    pub scope: String,
    /// Position within the scope's emission order.
    pub index: u64,
    /// Event name (e.g. `span-start`, `solver-step`, `checkpoint`).
    pub name: String,
    /// Payload, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_jsonl(&self, seq: u64) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        out.push_str("{\"seq\":");
        let _ = write!(out, "{seq}");
        out.push_str(",\"scope\":");
        push_json_str(&mut out, &self.scope);
        out.push_str(",\"index\":");
        let _ = write!(out, "{}", self.index);
        out.push_str(",\"name\":");
        push_json_str(&mut out, &self.name);
        for (key, value) in &self.fields {
            out.push(',');
            push_json_str(&mut out, key);
            out.push(':');
            match value {
                Value::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::F64(v) if v.is_finite() => {
                    let _ = write!(out, "{v:?}");
                }
                // JSON has no NaN/Infinity literal; `null` keeps the
                // line parseable and the anomaly visible.
                Value::F64(_) => out.push_str("null"),
                Value::Bool(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::Str(v) => push_json_str(&mut out, v),
            }
        }
        out.push('}');
        out
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // mppm-lint: allow(lossy-counter-cast): char-to-u32 is total, not a counter
            c if (c as u32) < 0x20 => {
                // mppm-lint: allow(lossy-counter-cast): char-to-u32 is total, not a counter
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_has_fixed_key_order_and_escapes() {
        let e = Event {
            scope: "campaign/shard-d0-i0000".into(),
            index: 2,
            name: "note".into(),
            fields: vec![
                ("count", Value::U64(7)),
                ("ratio", Value::F64(0.5)),
                ("ok", Value::Bool(true)),
                ("label", Value::Str("a\"b\\c\nd".into())),
            ],
        };
        assert_eq!(
            e.to_jsonl(41),
            "{\"seq\":41,\"scope\":\"campaign/shard-d0-i0000\",\"index\":2,\
             \"name\":\"note\",\"count\":7,\"ratio\":0.5,\"ok\":true,\
             \"label\":\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn floats_round_trip_and_non_finite_is_null() {
        let e = Event {
            scope: "s".into(),
            index: 0,
            name: "f".into(),
            fields: vec![("x", Value::F64(1.0)), ("y", Value::F64(f64::NAN))],
        };
        let line = e.to_jsonl(0);
        assert!(line.contains("\"x\":1.0"), "whole floats keep a decimal point: {line}");
        assert!(line.contains("\"y\":null"), "NaN must not produce invalid JSON: {line}");
    }

    #[test]
    fn value_conversions_cover_the_common_types() {
        assert_eq!(Value::from(3u64), Value::U64(3));
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(1.5f64), Value::F64(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
    }
}
