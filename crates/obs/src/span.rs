//! Observers and hierarchical spans.

use crate::counters::{Counter, CounterRegistry};
use crate::event::{Event, Value};
use crate::sink::Sink;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The root handle of one observed run: a set of sinks plus the
/// counter registry, shared by every [`Span`] derived from it.
///
/// A *disabled* observer (the default) holds nothing at all — no
/// allocation, no sinks — and every operation on it or its spans is a
/// single always-taken branch. Cloning is an `Option<Arc>` copy.
#[derive(Clone, Default)]
pub struct Observer {
    inner: Option<Arc<ObserverInner>>,
}

struct ObserverInner {
    sinks: Vec<Box<dyn Sink>>,
    counters: CounterRegistry,
}

impl Observer {
    /// The inert observer: observes nothing, costs nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An observer feeding one sink.
    pub fn new(sink: Box<dyn Sink>) -> Self {
        Self::with_sinks(vec![sink])
    }

    /// An observer fanning events out to several sinks (e.g. progress
    /// lines *and* a JSONL trace).
    pub fn with_sinks(sinks: Vec<Box<dyn Sink>>) -> Self {
        Self { inner: Some(Arc::new(ObserverInner { sinks, counters: CounterRegistry::new() })) }
    }

    /// Whether events reach any sink.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The registry counter named `name` ([`Counter::inert`] when
    /// disabled, so call sites need no guards).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.counters.counter(name),
            None => Counter::inert(),
        }
    }

    /// Current counter values in sorted name order (empty when
    /// disabled).
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        self.inner.as_ref().map(|i| i.counters.snapshot()).unwrap_or_default()
    }

    /// Opens the root span of the run (emits `span-start`).
    pub fn root(&self, name: &str) -> Span {
        match &self.inner {
            Some(_) => Span::open(self.clone(), name.to_string()),
            None => Span::disabled(),
        }
    }

    /// Publishes the final counter snapshot as events (scope
    /// `counters`, one event per counter, sorted by name) and flushes
    /// every sink. Call exactly once, after the root span has dropped.
    ///
    /// # Errors
    ///
    /// The first I/O error any sink reports while flushing.
    pub fn finish(&self) -> std::io::Result<()> {
        let Some(inner) = &self.inner else { return Ok(()) };
        for (index, (name, value)) in inner.counters.snapshot().into_iter().enumerate() {
            self.record(Event {
                scope: "counters".to_string(),
                index: index as u64,
                name: "counter".to_string(),
                fields: vec![("counter", Value::Str(name)), ("value", Value::U64(value))],
            });
        }
        for sink in &inner.sinks {
            sink.finish()?;
        }
        Ok(())
    }

    fn record(&self, event: Event) {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                sink.record(event.clone());
            }
        }
    }
}

/// Host-clock read for span timing. Wall-clock never feeds simulated
/// time or results: `elapsed_us` appears only on span-end telemetry
/// events, and determinism tests strip it before comparing traces.
fn now() -> Instant {
    // mppm-lint: allow(wallclock-in-sim, taint-nondet-to-result): span-end telemetry only; determinism tests strip `elapsed_us` before comparing traces
    Instant::now()
}

struct ScopeState {
    path: String,
    next: AtomicU64,
}

/// One scope in the span tree (campaign → shard → mix → …).
///
/// Emits `span-start` when opened and `span-end` (with `elapsed_us`)
/// when dropped. Events carry the scope's full path and a per-scope
/// index; under the crate's single-writer-per-scope contract that pair
/// orders the whole stream deterministically.
///
/// Spans are deliberately not `Clone` — exactly one owner emits the
/// `span-end`. Share by reference; concurrent workers get their own
/// [`Span::child`] scopes.
pub struct Span {
    observer: Observer,
    scope: Option<Arc<ScopeState>>,
    started: Option<Instant>,
}

impl Span {
    /// A span that records nothing (from a disabled observer).
    pub fn disabled() -> Self {
        Self { observer: Observer::disabled(), scope: None, started: None }
    }

    fn open(observer: Observer, path: String) -> Self {
        let span = Self {
            observer,
            scope: Some(Arc::new(ScopeState { path, next: AtomicU64::new(0) })),
            started: Some(now()),
        };
        span.event("span-start", &[]);
        span
    }

    /// Whether events from this span reach any sink.
    pub fn is_enabled(&self) -> bool {
        self.scope.is_some()
    }

    /// The full scope path (empty when disabled).
    pub fn path(&self) -> &str {
        self.scope.as_ref().map_or("", |s| s.path.as_str())
    }

    /// Opens a child scope named `name` under this span's path.
    ///
    /// Child names must be unique within a parent (use deterministic
    /// labels like `shard-d0-i0003`) so `(scope, index)` stays a total
    /// order.
    pub fn child(&self, name: &str) -> Span {
        match &self.scope {
            Some(scope) => {
                Span::open(self.observer.clone(), format!("{}/{name}", scope.path))
            }
            None => Span::disabled(),
        }
    }

    /// Emits one event in this scope. A no-op (one branch) when
    /// disabled; guard expensive field construction with
    /// [`Span::is_enabled`] at hot call sites.
    pub fn event(&self, name: &str, fields: &[(&'static str, Value)]) {
        let Some(scope) = &self.scope else { return };
        let index = scope.next.fetch_add(1, Ordering::Relaxed);
        self.observer.record(Event {
            scope: scope.path.clone(),
            index,
            name: name.to_string(),
            fields: fields.to_vec(),
        });
    }

    /// The registry counter named `name` (inert when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        self.observer.counter(name)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.scope.is_some() {
            let elapsed = self
                .started
                .map_or(0, |t| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
            self.event("span-end", &[("elapsed_us", Value::U64(elapsed))]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Clone, Default)]
    struct CaptureSink(Arc<Mutex<Vec<Event>>>);

    impl Sink for CaptureSink {
        fn record(&self, event: Event) {
            self.0.lock().unwrap().push(event);
        }
    }

    #[test]
    fn disabled_span_tree_emits_nothing_and_reads_no_clock() {
        let span = Span::disabled();
        assert!(!span.is_enabled());
        assert_eq!(span.path(), "");
        let child = span.child("mix-0000");
        assert!(!child.is_enabled());
        child.event("anything", &[("x", Value::U64(1))]);
        let counter = child.counter("sim.llc.hits");
        counter.add(5);
        assert!(!counter.is_live());
        assert!(span.started.is_none(), "disabled spans never touch Instant::now");
    }

    #[test]
    fn span_tree_paths_and_indices_are_deterministic() {
        let capture = CaptureSink::default();
        let observer = Observer::new(Box::new(capture.clone()));
        {
            let root = observer.root("campaign");
            assert_eq!(root.path(), "campaign");
            root.event("plan", &[("shards", Value::U64(3))]);
            let shard = root.child("shard-d0-i0000");
            assert_eq!(shard.path(), "campaign/shard-d0-i0000");
            shard.event("checkpoint", &[]);
        }
        let events = capture.0.lock().unwrap().clone();
        let tags: Vec<(String, u64, String)> =
            events.iter().map(|e| (e.scope.clone(), e.index, e.name.clone())).collect();
        assert_eq!(
            tags,
            vec![
                ("campaign".into(), 0, "span-start".into()),
                ("campaign".into(), 1, "plan".into()),
                ("campaign/shard-d0-i0000".into(), 0, "span-start".into()),
                ("campaign/shard-d0-i0000".into(), 1, "checkpoint".into()),
                ("campaign/shard-d0-i0000".into(), 2, "span-end".into()),
                ("campaign".into(), 2, "span-end".into()),
            ]
        );
        let end = events.last().unwrap();
        assert_eq!(end.fields.len(), 1);
        assert_eq!(end.fields[0].0, "elapsed_us");
    }

    #[test]
    fn finish_publishes_counters_in_sorted_order() {
        let capture = CaptureSink::default();
        let observer = Observer::new(Box::new(capture.clone()));
        observer.counter("zeta").add(2);
        observer.counter("alpha").incr();
        observer.finish().unwrap();
        let events = capture.0.lock().unwrap().clone();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].scope, "counters");
        assert_eq!(events[0].fields[0], ("counter", Value::Str("alpha".into())));
        assert_eq!(events[0].fields[1], ("value", Value::U64(1)));
        assert_eq!(events[1].fields[0], ("counter", Value::Str("zeta".into())));
    }

    #[test]
    fn multiple_sinks_all_see_every_event() {
        let a = CaptureSink::default();
        let b = CaptureSink::default();
        let observer = Observer::with_sinks(vec![Box::new(a.clone()), Box::new(b.clone())]);
        observer.root("run").event("tick", &[]);
        assert_eq!(a.0.lock().unwrap().len(), b.0.lock().unwrap().len());
        assert!(a.0.lock().unwrap().len() >= 2, "span-start + tick at least");
    }
}
