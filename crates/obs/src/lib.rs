//! `mppm-obs` — structured observability for the MPPM workspace.
//!
//! The paper's argument rests on running thousands of mix simulations
//! and model solves per campaign; this crate is the shared spine that
//! makes those runs visible without perturbing them. It is deliberately
//! **dependency-free** (std only) so every other crate can afford it.
//!
//! Three pieces:
//!
//! - **Spans** ([`Observer`], [`Span`]): a hierarchical scope tree
//!   (campaign → shard → mix → solver iteration). Each span owns a
//!   deterministic scope path (e.g. `campaign/shard-d0-i0003/mix-0007`)
//!   and a per-scope event index, so the event stream has a canonical
//!   order that does not depend on thread scheduling.
//! - **Counters** ([`CounterRegistry`], [`Counter`]): named relaxed
//!   atomics for hot-path tallies (cache hits/misses/evictions,
//!   interleaver heap traffic, solver iterations). Hot loops keep their
//!   native plain-integer counters and *publish* them at span
//!   boundaries; the registry is never touched per-access.
//! - **Sinks** ([`Sink`]): pluggable consumers. [`NoopSink`] swallows
//!   everything (for measuring the enabled-but-silent path),
//!   [`ProgressSink`] prints human progress lines to stderr, and
//!   [`JsonlSink`] buffers events and writes a deterministic JSONL
//!   file through [`atomic_write_bytes`].
//!
//! # The off switch is free
//!
//! A disabled [`Observer`] holds no allocation at all
//! (`inner: Option<Arc<..>> = None`), and every [`Span`] derived from
//! it is inert: `event()` is a branch on a `None` that the branch
//! predictor learns immediately, no `Instant::now()` is ever read, no
//! field values are heap-allocated (callers pass stack slices), and the
//! simulator hot loops are not instrumented at all — they publish
//! their existing native counters once per mix. The `speed` bin
//! measures this claim (`BENCH_obs.json`); see DESIGN.md §11.
//!
//! # Determinism contract
//!
//! Emit into one scope from one thread at a time (concurrent workers
//! each get their own child span). Under that contract the
//! `(scope, index)` pair is a total, thread-count-invariant order, and
//! [`JsonlSink`] sorts by it before writing — two runs at different
//! `MPPM_THREADS` produce byte-identical trace files modulo the
//! wall-clock `elapsed_us` field on span-end events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
mod counters;
mod event;
mod fswrite;
mod sink;
mod span;

pub use counters::{Counter, CounterRegistry};
pub use event::{Event, Value};
pub use fswrite::atomic_write_bytes;
pub use sink::{JsonlSink, NoopSink, ProgressSink, Sink};
pub use span::{Observer, Span};
