//! Process-wide allocation tally — the observability half of the
//! allocation-free-steady-state proof.
//!
//! This module is deliberately *passive*: it holds two relaxed atomics
//! and does nothing unless something feeds them. Production builds never
//! do, so [`snapshot`] reads zeros and the `sim.alloc.*` counters the
//! simulator publishes stay at zero. Test and bench binaries that want
//! real numbers install a counting `#[global_allocator]` *in their own
//! crate* (a `GlobalAlloc` impl is necessarily `unsafe`, and this crate
//! is `#![forbid(unsafe_code)]`) and report every allocation here via
//! [`note_alloc`]; see `crates/cmpsim/tests/alloc_steady.rs` for the
//! canonical harness.
//!
//! The counters are monotonic totals. Callers measure a region by taking
//! a [`snapshot`] before and after and subtracting ([`AllocSnapshot::since`]).

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Records one heap allocation of `bytes` bytes. Called by counting
/// allocators installed in test/bench binaries; never called from
/// production code.
pub fn note_alloc(bytes: u64) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Point-in-time view of the process allocation totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Heap allocations reported so far.
    pub allocs: u64,
    /// Bytes requested across those allocations.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// The allocations and bytes accumulated since `earlier`.
    pub fn since(&self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// The current allocation totals (zeros unless a counting allocator is
/// installed in this process).
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot { allocs: ALLOCS.load(Ordering::Relaxed), bytes: BYTES.load(Ordering::Relaxed) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notes_accumulate_and_subtract() {
        let before = snapshot();
        note_alloc(64);
        note_alloc(100);
        let delta = snapshot().since(before);
        // Other tests in this binary may note allocations concurrently,
        // so assert lower bounds only.
        assert!(delta.allocs >= 2);
        assert!(delta.bytes >= 164);
    }
}
