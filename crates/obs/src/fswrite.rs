//! Atomic file publication — the workspace's one blessed write path.
//!
//! Lives here (the bottom-of-stack crate) so every layer, including
//! the trace sink in this crate, can use it without depending on the
//! experiments crate; `mppm_experiments::atomic_write_bytes` re-exports
//! this function for existing callers.

use std::path::Path;

/// Writes `bytes` to `path` atomically: the bytes go to a uniquely named
/// temp file in the same directory, which is then renamed over the
/// target. A reader can observe the old contents or the new contents,
/// never a truncated file — so a killed run can never leave a corrupt
/// cache entry, campaign journal shard, or half-written CSV behind. Temp
/// names embed the process id and a counter, so concurrent writers
/// (worker threads, parallel test processes) cannot clobber each other's
/// staging files.
///
/// Every result-file write in the workspace routes through this function
/// or `mppm_experiments::atomic_write_json`; the `non-atomic-write` lint
/// enforces it.
///
/// # Errors
///
/// Any I/O error from writing the temp file or renaming it.
pub fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_TMP: AtomicU64 = AtomicU64::new(0);
    let file_name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    let tmp = path.with_file_name(format!(
        "{file_name}.tmp-{}-{}",
        std::process::id(),
        NEXT_TMP.fetch_add(1, Ordering::Relaxed)
    ));
    // The staging file is private to this writer (unique name) until the
    // rename below publishes it, so this is the one place a bare write
    // is sound — it IS the atomic primitive.
    // mppm-lint: allow(non-atomic-write): unique-named staging file, published only by the rename below
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overwrites_atomically_and_cleans_staging() {
        let dir = std::env::temp_dir()
            .join(format!("mppm-obs-fswrite-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.txt");
        atomic_write_bytes(&path, b"first").unwrap();
        atomic_write_bytes(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let strays: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("tmp"))
            .collect();
        assert!(strays.is_empty(), "staging files linger: {strays:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_paths_without_a_file_name() {
        let err = atomic_write_bytes(Path::new("/"), b"x").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
