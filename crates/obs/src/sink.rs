//! Event sinks: where spans and counters end up.

use crate::event::{Event, Value};
use crate::fswrite::atomic_write_bytes;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// A consumer of observability events.
///
/// Implementations must be thread-safe: campaign workers emit from
/// `parallel_map` threads. `record` should be cheap and non-blocking
/// where possible; heavy work (sorting, I/O) belongs in `finish`,
/// which the owning process calls exactly once at shutdown.
pub trait Sink: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: Event);

    /// Flushes buffered state (e.g. writes the trace file).
    ///
    /// # Errors
    ///
    /// Any I/O error publishing buffered events.
    fn finish(&self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Swallows every event.
///
/// This is *not* the disabled path — a disabled observer never reaches
/// any sink at all. `NoopSink` exists to measure the enabled-but-silent
/// overhead (span bookkeeping, event construction) in the `speed` bin.
#[derive(Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _event: Event) {}
}

/// Human progress lines on stderr.
///
/// Prints coarse milestones only — plan summaries, shard checkpoints,
/// and the end of shallow spans (depth ≤ 2, i.e. campaign and shard
/// level) — so a full-scale campaign stays readable. Everything finer
/// (per-mix spans, solver steps) is for the JSONL sink.
#[derive(Debug, Default)]
pub struct ProgressSink;

impl Sink for ProgressSink {
    fn record(&self, event: Event) {
        let depth = event.scope.matches('/').count();
        let milestone = event.name == "plan"
            || event.name == "checkpoint"
            || (event.name == "span-end" && depth <= 1);
        if !milestone {
            return;
        }
        let mut line = format!("  [trace] {} {}", event.scope, event.name);
        for (key, value) in &event.fields {
            match value {
                Value::U64(v) => line.push_str(&format!(" {key}={v}")),
                Value::F64(v) => line.push_str(&format!(" {key}={v:.4}")),
                Value::Bool(v) => line.push_str(&format!(" {key}={v}")),
                Value::Str(v) => line.push_str(&format!(" {key}={v}")),
            }
        }
        eprintln!("{line}");
    }
}

/// Buffers events and writes them as deterministic JSONL on `finish`.
///
/// Events are sorted by `(scope, index)` — the canonical order, which
/// does not depend on thread interleaving — then numbered with a
/// monotone `seq` and published in one [`atomic_write_bytes`] call, so
/// a killed run leaves either no trace file or a complete one.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    events: Mutex<Vec<Event>>,
}

impl JsonlSink {
    /// A sink that will write `path` when finished.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into(), events: Mutex::new(Vec::new()) }
    }

    /// The trace file this sink writes.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: Event) {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).push(event);
    }

    fn finish(&self) -> std::io::Result<()> {
        let mut events =
            std::mem::take(&mut *self.events.lock().unwrap_or_else(PoisonError::into_inner));
        events.sort_by(|a, b| a.scope.cmp(&b.scope).then(a.index.cmp(&b.index)));
        let mut out = String::new();
        for (seq, event) in events.iter().enumerate() {
            out.push_str(&event.to_jsonl(seq as u64));
            out.push('\n');
        }
        atomic_write_bytes(&self.path, out.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(scope: &str, index: u64, name: &str) -> Event {
        Event { scope: scope.into(), index, name: name.into(), fields: vec![] }
    }

    #[test]
    fn jsonl_sink_sorts_by_scope_then_index_and_numbers_seq() {
        let dir = std::env::temp_dir()
            .join(format!("mppm-obs-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = JsonlSink::new(&path);
        // Arrival order scrambled, as parallel workers would produce.
        sink.record(ev("c/shard-0001", 1, "b"));
        sink.record(ev("c/shard-0000", 0, "a"));
        sink.record(ev("c", 0, "span-start"));
        sink.record(ev("c/shard-0001", 0, "a"));
        sink.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"seq\":0,\"scope\":\"c\","));
        assert!(lines[1].contains("\"scope\":\"c/shard-0000\",\"index\":0"));
        assert!(lines[2].contains("\"scope\":\"c/shard-0001\",\"index\":0"));
        assert!(lines[3].contains("\"scope\":\"c/shard-0001\",\"index\":1"));
        assert!(lines[3].starts_with("{\"seq\":3,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn noop_sink_accepts_everything() {
        let sink = NoopSink;
        sink.record(ev("x", 0, "anything"));
        sink.finish().unwrap();
    }
}
