//! Named atomic counters for hot-path tallies.
//!
//! The registry is a cold-path structure: simulator and solver loops
//! keep their native plain-integer counters and publish totals here at
//! span boundaries (once per mix / per solve), so the per-access cost
//! of observability is exactly zero. Handles are [`Counter`]s — cheap
//! clones of an `Arc<AtomicU64>` — and an *inert* counter (the
//! disabled-observer case) is a `None` whose `add` is a single
//! predictable branch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A registry of named monotone counters.
///
/// Registration is find-or-create under a mutex (cold path); updates
/// through the returned [`Counter`] handles are lock-free relaxed
/// atomics. Snapshots iterate a `BTreeMap`, so they are always in
/// deterministic (sorted) name order.
#[derive(Debug, Default)]
pub struct CounterRegistry {
    slots: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
}

impl CounterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero if needed.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        let slot = slots.entry(name.to_string()).or_default();
        Counter(Some(Arc::clone(slot)))
    }

    /// Current `(name, value)` pairs in sorted name order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots.iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect()
    }
}

/// A handle to one registry counter, or an inert stand-in.
///
/// Inert counters come from a disabled observer: every operation is a
/// no-op behind one branch, so call sites need no `if enabled` guards.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A counter that ignores updates and always reads zero.
    pub fn inert() -> Self {
        Self(None)
    }

    /// Whether updates actually land in a registry.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` (relaxed; totals are only read at quiescent points).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(slot) = &self.0 {
            slot.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (zero for inert counters).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |slot| slot.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_or_create_shares_one_slot() {
        let reg = CounterRegistry::new();
        let a = reg.counter("sim.llc.hits");
        let b = reg.counter("sim.llc.hits");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot(), vec![("sim.llc.hits".to_string(), 4)]);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let reg = CounterRegistry::new();
        reg.counter("zeta").add(1);
        reg.counter("alpha").add(2);
        reg.counter("mid").add(3);
        let names: Vec<String> = reg.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn inert_counter_is_silent() {
        let c = Counter::inert();
        c.add(10);
        c.incr();
        assert!(!c.is_live());
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counters_sum_across_threads() {
        let reg = CounterRegistry::new();
        let c = reg.counter("spins");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
