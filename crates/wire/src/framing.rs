//! Newline framing over a byte stream.
//!
//! [`FrameReader`] turns an arbitrary [`Read`] into complete request
//! lines, independent of how the transport fragments them: a frame may
//! arrive one byte at a time or many frames may land in one read. Lines
//! longer than [`MAX_LINE`](crate::MAX_LINE) are discarded up to the
//! next newline and reported as [`Frame::Oversized`], so a server can
//! answer with a typed error instead of buffering without bound (see
//! the `blocking-in-handler` lint).

use std::io::Read;

use crate::MAX_LINE;

/// One framing step.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (without its trailing `\n`; a trailing `\r` is
    /// stripped for telnet-style clients).
    Line(String),
    /// A line exceeded the size limit; `discarded` bytes were skipped.
    Oversized {
        /// Number of bytes thrown away, including the newline if one
        /// was seen.
        discarded: usize,
    },
    /// End of stream. Any unterminated remainder was returned as a
    /// final [`Frame::Line`] first.
    Eof,
}

/// Incremental line reader with a hard per-line size limit.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for `\n` (restart point).
    scanned: usize,
    /// When set, we are discarding an oversized line up to its newline.
    discarding: Option<usize>,
    eof: bool,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self { inner, buf: Vec::new(), scanned: 0, discarding: None, eof: false }
    }

    /// Blocks until the next frame is available.
    ///
    /// # Errors
    ///
    /// Propagates transport errors from the underlying reader.
    pub fn next_frame(&mut self) -> std::io::Result<Frame> {
        loop {
            // Resolve what the buffer already holds before reading more.
            if let Some(frame) = self.take_buffered() {
                return Ok(frame);
            }
            if self.eof {
                if self.buf.is_empty() {
                    return Ok(Frame::Eof);
                }
                // Unterminated final line.
                let line = std::mem::take(&mut self.buf);
                self.scanned = 0;
                return Ok(Frame::Line(decode(line)));
            }
            let mut chunk = [0u8; 4096];
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                self.eof = true;
                if let Some(discarded) = self.discarding.take() {
                    // The oversized line never ended; report what we skipped.
                    return Ok(Frame::Oversized { discarded });
                }
                continue;
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    fn take_buffered(&mut self) -> Option<Frame> {
        if let Some(discarded) = self.discarding {
            // Skip to the newline terminating the oversized line.
            match self.buf.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    let total = discarded + nl + 1;
                    self.buf.drain(..=nl);
                    self.scanned = 0;
                    self.discarding = None;
                    return Some(Frame::Oversized { discarded: total });
                }
                None => {
                    self.discarding = Some(discarded + self.buf.len());
                    self.buf.clear();
                    self.scanned = 0;
                    return None;
                }
            }
        }
        if let Some(nl) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            let nl = self.scanned + nl;
            self.scanned = 0;
            if nl > MAX_LINE {
                self.buf.drain(..=nl);
                return Some(Frame::Oversized { discarded: nl + 1 });
            }
            let mut line: Vec<u8> = self.buf.drain(..=nl).collect();
            line.pop(); // the newline
            return Some(Frame::Line(decode(line)));
        }
        self.scanned = self.buf.len();
        if self.buf.len() > MAX_LINE {
            self.discarding = Some(self.buf.len());
            self.buf.clear();
            self.scanned = 0;
        }
        None
    }
}

fn decode(mut line: Vec<u8>) -> String {
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8_lossy(&line).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Yields the source bytes `chunk` bytes at a time, exercising
    /// partial reads across buffer boundaries.
    struct Chunked {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn frames(data: &[u8], chunk: usize) -> Vec<Frame> {
        let mut reader =
            FrameReader::new(Chunked { data: data.to_vec(), pos: 0, chunk });
        let mut out = Vec::new();
        loop {
            let frame = reader.next_frame().unwrap();
            let done = frame == Frame::Eof;
            out.push(frame);
            if done {
                return out;
            }
        }
    }

    #[test]
    fn lines_survive_any_fragmentation() {
        let data = b"{\"kind\":\"ping\"}\n{\"kind\":\"stats\"}\n";
        for chunk in [1, 2, 3, 7, 4096] {
            assert_eq!(
                frames(data, chunk),
                vec![
                    Frame::Line("{\"kind\":\"ping\"}".to_string()),
                    Frame::Line("{\"kind\":\"stats\"}".to_string()),
                    Frame::Eof,
                ],
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn crlf_and_unterminated_tail_are_tolerated() {
        assert_eq!(
            frames(b"a\r\nb", 4096),
            vec![Frame::Line("a".to_string()), Frame::Line("b".to_string()), Frame::Eof]
        );
    }

    #[test]
    fn oversized_line_is_discarded_not_buffered() {
        let mut data = vec![b'x'; MAX_LINE + 100];
        data.push(b'\n');
        data.extend_from_slice(b"{\"kind\":\"ping\"}\n");
        let got = frames(&data, 8192);
        assert_eq!(
            got,
            vec![
                Frame::Oversized { discarded: MAX_LINE + 101 },
                Frame::Line("{\"kind\":\"ping\"}".to_string()),
                Frame::Eof,
            ]
        );
    }

    #[test]
    fn oversized_line_at_eof_reports_skipped_bytes() {
        let data = vec![b'y'; MAX_LINE + 7];
        let got = frames(&data, 4096);
        assert_eq!(got, vec![Frame::Oversized { discarded: MAX_LINE + 7 }, Frame::Eof]);
    }

    #[test]
    fn exact_limit_line_is_accepted() {
        let mut data = vec![b'z'; MAX_LINE];
        data.push(b'\n');
        let got = frames(&data, 65536);
        match &got[0] {
            Frame::Line(l) => assert_eq!(l.len(), MAX_LINE),
            other => panic!("expected a line, got {other:?}"),
        }
    }
}
