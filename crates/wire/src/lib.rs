//! Shared NDJSON wire plumbing.
//!
//! Both wire protocols in the workspace — the `mppmd` daemon socket and
//! the campaign coordinator↔worker pipes — speak newline-delimited JSON
//! frames. This crate holds what they share so neither depends on the
//! other:
//!
//! * [`FrameReader`]: incremental newline framing with a hard per-line
//!   size limit ([`MAX_LINE`]), robust to any transport fragmentation;
//! * [`PROTOCOL_VERSION`] and [`check_version`]: the `v` field carried
//!   by every frame, so two builds speaking different revisions fail
//!   with a typed [`ProtocolMismatch`] instead of a silent misparse.

mod framing;

pub use framing::{Frame, FrameReader};

/// Hard per-line size limit for NDJSON frames (1 MiB). Longer lines are
/// discarded to the next newline and surface as [`Frame::Oversized`].
pub const MAX_LINE: usize = 1 << 20;

/// Version of the NDJSON wire protocols (daemon socket and campaign
/// worker pipes). Carried as the `v` member of every frame; bump it
/// whenever a frame shape changes incompatibly.
pub const PROTOCOL_VERSION: u64 = 1;

/// A peer speaks a different protocol revision than this build.
///
/// Raised by [`check_version`] when a frame's `v` field disagrees with
/// [`PROTOCOL_VERSION`]. Frames *without* a `v` field are treated as
/// version 0 — the pre-versioning wire — and refused the same way, so
/// mixing an old binary with a new one fails loudly on the first frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolMismatch {
    /// The version the peer announced (0 when the frame had none).
    pub found: u64,
    /// The version this build speaks.
    pub expected: u64,
}

impl std::fmt::Display for ProtocolMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "protocol mismatch: peer speaks wire version {}, this build speaks {} \
             (rebuild both sides from the same revision)",
            self.found, self.expected
        )
    }
}

impl std::error::Error for ProtocolMismatch {}

/// Validates a frame's announced version against this build's.
///
/// `found` is the frame's `v` member, or `None` when absent (legacy
/// frames announce nothing and count as version 0).
///
/// # Errors
///
/// [`ProtocolMismatch`] unless `found == Some(PROTOCOL_VERSION)`.
pub fn check_version(found: Option<u64>) -> Result<(), ProtocolMismatch> {
    let found = found.unwrap_or(0);
    if found == PROTOCOL_VERSION {
        Ok(())
    } else {
        Err(ProtocolMismatch { found, expected: PROTOCOL_VERSION })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_check_accepts_only_the_current_revision() {
        assert!(check_version(Some(PROTOCOL_VERSION)).is_ok());
        let err = check_version(None).unwrap_err();
        assert_eq!(err, ProtocolMismatch { found: 0, expected: PROTOCOL_VERSION });
        let err = check_version(Some(99)).unwrap_err();
        assert_eq!(err.found, 99);
        assert!(err.to_string().contains("protocol mismatch"), "{err}");
    }
}
