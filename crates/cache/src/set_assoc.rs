use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::CacheConfig;

/// Victim-selection policy of a [`SetAssocCache`].
///
/// MPPM's stack-distance mathematics assumes LRU (the paper's machine uses
/// LRU at every level); the other policies exist for extension studies and
/// to exercise the simulator's independence from the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// Evict the least-recently-used line.
    Lru,
    /// Evict the oldest-inserted line.
    Fifo,
    /// Evict a uniformly random line (deterministic via the given seed).
    Random {
        /// Seed for the victim-picking RNG.
        seed: u64,
    },
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// 0-based LRU-stack depth of the hit within its set (`0` = MRU);
    /// `None` on a miss. Feed this to [`crate::Sdc::record`].
    pub depth: Option<u32>,
    /// Block evicted to make room, if the access missed in a full set.
    pub evicted: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    block: u64,
    inserted: u64,
}

/// A set-associative cache over 64-bit block identifiers.
///
/// The cache stores whole block ids (callers index by block, not byte
/// address) and keeps each set in recency order, so every hit reports its
/// LRU-stack depth — the quantity stack-distance counter profiles are built
/// from.
///
/// # Layout
///
/// Storage is one flat `sets × assoc` slab (no per-set `Vec`s): set `s`
/// owns slots `[s * assoc, (s + 1) * assoc)`, of which the first
/// `lens[s]` hold resident lines in recency order (MRU first). The set
/// count must be a power of two so set selection is a mask instead of a
/// division; recency updates are in-place rotations of at most `assoc`
/// fixed-size elements instead of `Vec::remove`/`insert` memmoves. The
/// original per-set-`Vec` implementation survives as
/// [`crate::reference::NaiveCache`], and a property-test oracle
/// (`tests/differential.rs`) proves the two bit-identical access by
/// access under every replacement policy.
///
/// # Example
///
/// ```
/// use mppm_cache::{CacheConfig, Replacement, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheConfig::new(4096, 4, 64, 1), Replacement::Lru);
/// assert!(!c.access(7).hit);
/// assert_eq!(c.access(7).depth, Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// `sets × assoc` slots, set-major; within a set the resident prefix
    /// is in recency order (MRU first). Slots past a set's length hold
    /// stale data and are never read.
    ways: Box<[Way]>,
    /// Resident-line count per set.
    lens: Box<[u32]>,
    /// `sets - 1`; valid because the set count is a power of two.
    set_mask: u64,
    assoc: usize,
    replacement: Replacement,
    rng: Option<SmallRng>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SetAssocCache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's set count is not a power of two (the
    /// kernel indexes sets with a mask; every machine configuration in
    /// this reproduction has power-of-two sets).
    pub fn new(config: CacheConfig, replacement: Replacement) -> Self {
        let sets = config.sets();
        assert!(
            sets.is_power_of_two(),
            "SetAssocCache requires a power-of-two set count, got {sets}"
        );
        let assoc = config.assoc as usize;
        let slots = (sets as usize) * assoc;
        let rng = match replacement {
            Replacement::Random { seed } => Some(SmallRng::seed_from_u64(seed)),
            _ => None,
        };
        Self {
            config,
            ways: vec![Way { block: 0, inserted: 0 }; slots].into_boxed_slice(),
            lens: vec![0u32; sets as usize].into_boxed_slice(),
            set_mask: sets - 1,
            assoc,
            replacement,
            rng,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Total hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total evictions observed (misses that displaced a resident line).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Accesses `block`, filling it on a miss.
    ///
    /// On a hit the block moves to the MRU position of its set; on a miss
    /// it is inserted at MRU, evicting a victim chosen by the replacement
    /// policy if the set is full.
    pub fn access(&mut self, block: u64) -> AccessResult {
        self.tick += 1;
        let set_idx = (block & self.set_mask) as usize;
        let base = set_idx * self.assoc;
        let len = self.lens[set_idx] as usize;
        let set = &mut self.ways[base..base + self.assoc];

        if let Some(pos) = set[..len].iter().position(|w| w.block == block) {
            // `remove(pos)` + `insert(0, ..)` is exactly a one-step right
            // rotation of the prefix ending at `pos`.
            set[..=pos].rotate_right(1);
            self.hits += 1;
            // mppm-lint: allow(lossy-counter-cast): pos < assoc <= u32::MAX; hot kernel path stays branch-free
            return AccessResult { hit: true, depth: Some(pos as u32), evicted: None };
        }

        self.misses += 1;
        let evicted = if len == self.assoc {
            let victim_pos = match self.replacement {
                Replacement::Lru => len - 1,
                Replacement::Fifo => {
                    let (pos, _) = set
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, w)| w.inserted)
                        .expect("set is non-empty");
                    pos
                }
                Replacement::Random { .. } => {
                    let rng = self.rng.as_mut().expect("random policy has an rng");
                    rng.gen_range(0..len)
                }
            };
            let victim = set[victim_pos].block;
            set[..=victim_pos].rotate_right(1);
            set[0] = Way { block, inserted: self.tick };
            self.evictions += 1;
            Some(victim)
        } else {
            // Rotating one slot past the resident prefix shifts it right
            // and brings a stale slot to the front, which is overwritten.
            set[..=len].rotate_right(1);
            set[0] = Way { block, inserted: self.tick };
            // mppm-lint: allow(lossy-counter-cast): len < assoc <= u32::MAX; hot kernel path stays branch-free
            self.lens[set_idx] = (len + 1) as u32;
            None
        };
        AccessResult { hit: false, depth: None, evicted }
    }

    /// Whether `block` is currently resident (does not touch recency).
    pub fn contains(&self, block: u64) -> bool {
        let set_idx = (block & self.set_mask) as usize;
        let base = set_idx * self.assoc;
        let len = self.lens[set_idx] as usize;
        self.ways[base..base + len].iter().any(|w| w.block == block)
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> u64 {
        self.lens.iter().map(|&l| u64::from(l)).sum()
    }

    /// Invalidates everything and clears statistics.
    pub fn reset(&mut self) {
        self.lens.fill(0);
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
        if let Replacement::Random { seed } = self.replacement {
            self.rng = Some(SmallRng::seed_from_u64(seed));
        }
    }

    /// Reconfigures the cache in place, equivalent in every observable
    /// way to `*self = Self::new(config, replacement)` but reusing the
    /// existing `ways`/`lens` slabs when the `sets × assoc` shape is
    /// unchanged — the object-pool path `mppm_sim`'s `SimArena` resets
    /// between mixes. Stale slots past a set's resident length are never
    /// read, so slab reuse cannot leak state across mixes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's set count is not a power of two
    /// (only reachable on the reallocation path; a matching shape was
    /// already validated when the slab was first built).
    pub fn reinit(&mut self, config: CacheConfig, replacement: Replacement) {
        let sets = config.sets();
        if sets as usize != self.lens.len() || config.assoc as usize != self.assoc {
            *self = Self::new(config, replacement);
            return;
        }
        self.config = config;
        self.set_mask = sets - 1;
        self.replacement = replacement;
        self.rng = match replacement {
            Replacement::Random { seed } => Some(SmallRng::seed_from_u64(seed)),
            _ => None,
        };
        self.lens.fill(0);
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: u32) -> SetAssocCache {
        // 4 sets of `assoc` ways, 64B lines.
        let size = u64::from(assoc) * 4 * 64;
        SetAssocCache::new(CacheConfig::new(size, assoc, 64, 1), Replacement::Lru)
    }

    #[test]
    fn miss_then_hit_at_mru() {
        let mut c = tiny(4);
        let r = c.access(10);
        assert!(!r.hit);
        assert_eq!(r.depth, None);
        let r = c.access(10);
        assert!(r.hit);
        assert_eq!(r.depth, Some(0));
    }

    #[test]
    fn depth_reflects_recency() {
        let mut c = tiny(4);
        // Same set: blocks 0, 4, 8 (4 sets).
        c.access(0);
        c.access(4);
        c.access(8);
        // 0 is now at depth 2.
        assert_eq!(c.access(0).depth, Some(2));
        // 0 moved to MRU; 8 is at depth 1; 4 at depth 2.
        assert_eq!(c.access(8).depth, Some(1));
        assert_eq!(c.access(4).depth, Some(2));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2);
        c.access(0);
        c.access(4);
        assert_eq!(c.evictions(), 0);
        let r = c.access(8); // evicts 0
        assert_eq!(r.evicted, Some(0));
        assert_eq!(c.evictions(), 1);
        assert!(!c.contains(0));
        assert!(c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn fifo_evicts_first_inserted_even_if_recent() {
        let mut c = SetAssocCache::new(CacheConfig::new(2 * 4 * 64, 2, 64, 1), Replacement::Fifo);
        c.access(0);
        c.access(4);
        c.access(0); // touch 0; LRU would evict 4 next, FIFO still evicts 0
        let r = c.access(8);
        assert_eq!(r.evicted, Some(0));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mk = || {
            SetAssocCache::new(
                CacheConfig::new(4 * 4 * 64, 4, 64, 1),
                Replacement::Random { seed: 9 },
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for i in 0..200u64 {
            assert_eq!(a.access(i * 4), b.access(i * 4));
        }
    }

    #[test]
    fn occupancy_saturates_at_capacity() {
        let mut c = tiny(4);
        for i in 0..1000 {
            c.access(i);
        }
        assert_eq!(c.occupancy(), 16);
        assert_eq!(c.hits() + c.misses(), 1000);
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = tiny(8); // 32 lines
        for round in 0..10 {
            for b in 0..32u64 {
                let r = c.access(b);
                if round > 0 {
                    assert!(r.hit, "block {b} should hit after warmup");
                }
            }
        }
        assert_eq!(c.misses(), 32);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny(2);
        c.access(1);
        c.access(2);
        c.access(5);
        c.access(9); // third line in set 1 of a 2-way: forces an eviction
        assert_eq!(c.evictions(), 1);
        c.reset();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.evictions(), 0);
        assert!(!c.contains(1));
    }

    #[test]
    fn reinit_with_matching_shape_behaves_like_fresh() {
        // Warm a cache, then reinit it to the same shape but a different
        // latency/policy: every subsequent access must match a fresh
        // cache bit for bit (the SimArena pool path).
        let cfg = CacheConfig::new(4 * 4 * 64, 4, 64, 1);
        let recfg = CacheConfig::new(4 * 4 * 64, 4, 64, 9);
        for policy in [Replacement::Lru, Replacement::Fifo, Replacement::Random { seed: 3 }] {
            let mut pooled = SetAssocCache::new(cfg, Replacement::Lru);
            for b in 0..200u64 {
                pooled.access(b * 3);
            }
            pooled.reinit(recfg, policy);
            let mut fresh = SetAssocCache::new(recfg, policy);
            assert_eq!(pooled.config(), fresh.config());
            for b in 0..400u64 {
                assert_eq!(pooled.access(b % 37), fresh.access(b % 37), "{policy:?}");
            }
            assert_eq!(pooled.hits(), fresh.hits());
            assert_eq!(pooled.misses(), fresh.misses());
            assert_eq!(pooled.evictions(), fresh.evictions());
        }
    }

    #[test]
    fn reinit_with_new_shape_reallocates_correctly() {
        let mut c = tiny(2);
        c.access(1);
        // 8 sets of 4 ways: a different slab shape entirely.
        let cfg = CacheConfig::new(8 * 4 * 64, 4, 64, 2);
        c.reinit(cfg, Replacement::Lru);
        assert_eq!(c.config(), cfg);
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(1));
        let mut fresh = SetAssocCache::new(cfg, Replacement::Lru);
        for b in 0..300u64 {
            assert_eq!(c.access(b % 61), fresh.access(b % 61));
        }
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny(1); // direct-mapped, 4 sets
        c.access(0);
        c.access(1);
        c.access(2);
        c.access(3);
        assert!(c.access(0).hit);
        assert!(c.access(1).hit);
    }

    #[test]
    #[should_panic(expected = "power-of-two set count")]
    fn non_power_of_two_sets_panics() {
        // 3 sets of 2 ways.
        SetAssocCache::new(CacheConfig::new(3 * 2 * 64, 2, 64, 1), Replacement::Lru);
    }

    #[test]
    fn high_tag_bits_do_not_alias_sets() {
        // Blocks differing only above the set-index bits (e.g. the core
        // tags the simulator ORs in at bit 44) map to the same set but
        // stay distinct lines.
        let mut c = tiny(2);
        let tagged = |core: u64, block: u64| ((core + 1) << 44) | block;
        assert!(!c.access(tagged(0, 4)).hit);
        assert!(!c.access(tagged(1, 4)).hit);
        assert!(c.access(tagged(0, 4)).hit);
        assert!(c.access(tagged(1, 4)).hit);
        // Both live in set 0; a third same-set line evicts the LRU one.
        let r = c.access(tagged(2, 4));
        assert_eq!(r.evicted, Some(tagged(0, 4)));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn policies() -> Vec<Replacement> {
            vec![Replacement::Lru, Replacement::Fifo, Replacement::Random { seed: 1 }]
        }

        proptest! {
            /// Under any policy: hit+miss counts add up, occupancy never
            /// exceeds capacity, and an access to a just-accessed block
            /// always hits.
            #[test]
            fn bookkeeping_invariants(
                blocks in proptest::collection::vec(0u64..200, 1..300),
                assoc in 1u32..8,
            ) {
                for policy in policies() {
                    let sets = 4u64;
                    let cfg = CacheConfig::new(
                        sets * u64::from(assoc) * 64, assoc, 64, 1,
                    );
                    let mut cache = SetAssocCache::new(cfg, policy);
                    for &b in &blocks {
                        let r = cache.access(b);
                        if r.hit {
                            prop_assert!(r.evicted.is_none());
                            prop_assert!(r.depth.expect("hits have depth") < assoc);
                        }
                        prop_assert!(cache.contains(b), "just-inserted block resident");
                        prop_assert!(cache.access(b).hit, "immediate re-access hits");
                    }
                    prop_assert!(cache.occupancy() <= cfg.lines());
                    prop_assert_eq!(
                        cache.hits() + cache.misses(),
                        2 * blocks.len() as u64
                    );
                }
            }

            /// An LRU cache's miss count equals the SDC-predicted misses
            /// when the SDC is measured on the same stream — the identity
            /// the whole profiling methodology rests on.
            #[test]
            fn lru_misses_match_sdc(
                blocks in proptest::collection::vec(0u64..100, 1..400),
            ) {
                let cfg = CacheConfig::new(4 * 4 * 64, 4, 64, 1);
                let mut cache = SetAssocCache::new(cfg, Replacement::Lru);
                let mut sdc = crate::Sdc::new(4);
                for &b in &blocks {
                    sdc.record(cache.access(b).depth);
                }
                prop_assert_eq!(sdc.misses() as u64, cache.misses());
                prop_assert_eq!(sdc.accesses() as u64, blocks.len() as u64);
                // And folding to a smaller associativity can only add
                // misses.
                prop_assert!(sdc.fold_to(2).misses() >= sdc.misses());
            }

            /// A working set within one set's capacity never misses after
            /// the cold pass, under LRU and FIFO alike.
            #[test]
            fn resident_set_stops_missing(assoc in 2u32..8, rounds in 2u32..6) {
                for policy in [Replacement::Lru, Replacement::Fifo] {
                    let cfg = CacheConfig::new(u64::from(assoc) * 64, assoc, 64, 1);
                    let mut cache = SetAssocCache::new(cfg, policy);
                    for _ in 0..rounds {
                        for b in 0..u64::from(assoc) {
                            cache.access(b);
                        }
                    }
                    prop_assert_eq!(cache.misses(), u64::from(assoc), "{:?}", policy);
                }
            }
        }
    }
}
