//! Set-associative cache structures and stack-distance profiling.
//!
//! This crate provides the cache substrate both sides of the MPPM
//! reproduction are built on:
//!
//! * [`SetAssocCache`] — a set-associative cache with pluggable replacement
//!   ([`Replacement`]), used by the detailed simulator for L1/L2 and the
//!   shared last-level cache. Every access reports the LRU-stack depth it
//!   hit at, which is exactly the measurement a stack-distance counter
//!   profile needs.
//! * [`Sdc`] — stack-distance counters as defined by Mattson et al. and
//!   used by the paper (§2.1): for an A-way cache, counters `C_1..C_A`
//!   count hits per LRU-stack position and `C_>A` counts misses. The type
//!   carries the algebra MPPM relies on: window summation with fractional
//!   scaling, miss counts at *fractional* effective associativities (the
//!   FOA contention model needs this), and exact folding to a reduced
//!   associativity (the paper derives 8-way profiles from 16-way runs
//!   without re-simulating).
//!
//! # Example
//!
//! ```
//! use mppm_cache::{CacheConfig, Replacement, Sdc, SetAssocCache};
//!
//! let cfg = CacheConfig::new(512 * 1024, 8, 64, 16);
//! let mut llc = SetAssocCache::new(cfg, Replacement::Lru);
//! let mut sdc = Sdc::new(cfg.assoc);
//! for block in 0..10_000u64 {
//!     let r = llc.access(block % 3000);
//!     sdc.record(r.depth);
//! }
//! assert_eq!(sdc.accesses(), 10_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod reference;
mod sdc;
mod set_assoc;

pub use config::CacheConfig;
pub use sdc::Sdc;
pub use set_assoc::{AccessResult, Replacement, SetAssocCache};
