use serde::{Deserialize, Serialize};

/// Stack-distance counters for an A-way set-associative LRU cache.
///
/// Following Mattson et al. (1970) and the paper's §2.1: an access that
/// hits position `i` of its set's LRU stack (1-based) increments `C_i`; a
/// miss increments `C_{>A}`. Internally the counters are `f64` because the
/// model sums *fractionally scaled* per-interval SDCs when a model window
/// covers part of an interval.
///
/// The key derived quantity is [`Sdc::misses_at`]: the number of misses the
/// same access stream would see with a smaller *effective* associativity
/// `a ≤ A`, linearly interpolated for fractional `a`. The FOA contention
/// model evaluates it at each program's effective cache share, and
/// [`Sdc::fold_to`] uses it to derive reduced-associativity profiles
/// without re-simulation.
///
/// # Example
///
/// ```
/// use mppm_cache::Sdc;
///
/// let mut sdc = Sdc::new(4);
/// sdc.record(Some(0)); // hit at MRU (C_1)
/// sdc.record(Some(3)); // hit at LRU (C_4)
/// sdc.record(None);    // miss (C_>4)
/// assert_eq!(sdc.accesses(), 3.0);
/// assert_eq!(sdc.misses(), 1.0);
/// // With only 2 effective ways the depth-3 hit becomes a miss:
/// assert_eq!(sdc.misses_at(2.0), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sdc {
    /// `counters[d]` for `d < assoc` counts hits at 0-based depth `d`
    /// (the paper's `C_{d+1}`); `counters[assoc]` counts misses (`C_{>A}`).
    counters: Vec<f64>,
}

impl Sdc {
    /// Creates zeroed counters for an `assoc`-way cache.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is zero.
    pub fn new(assoc: u32) -> Self {
        assert!(assoc > 0, "associativity must be positive");
        Self { counters: vec![0.0; assoc as usize + 1] }
    }

    /// Zeroes the counters in place for an `assoc`-way cache — the state
    /// of a fresh [`Sdc::new`], but reusing the existing allocation when
    /// the associativity is unchanged. The solver's per-window scratch
    /// (`mppm::SolverScratch`) resets windows this way instead of
    /// allocating a new `Sdc` every model step.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is zero.
    pub fn reset(&mut self, assoc: u32) {
        assert!(assoc > 0, "associativity must be positive");
        self.counters.clear();
        self.counters.resize(assoc as usize + 1, 0.0);
    }

    /// The associativity these counters were measured at.
    pub fn assoc(&self) -> u32 {
        u32::try_from(self.counters.len() - 1).expect("constructed from a u32 assoc")
    }

    /// Records one access: `depth` is the 0-based LRU hit depth, or `None`
    /// for a miss (as reported by
    /// [`AccessResult::depth`](crate::AccessResult)).
    ///
    /// # Panics
    ///
    /// Panics if `depth >= assoc`.
    pub fn record(&mut self, depth: Option<u32>) {
        match depth {
            Some(d) => {
                assert!(d < self.assoc(), "hit depth {d} out of range for {}-way", self.assoc());
                self.counters[d as usize] += 1.0;
            }
            None => *self.counters.last_mut().expect("counters are non-empty") += 1.0,
        }
    }

    /// Raw counter values: `C_1..C_A` followed by `C_{>A}`.
    pub fn counters(&self) -> &[f64] {
        &self.counters
    }

    /// Total accesses.
    pub fn accesses(&self) -> f64 {
        self.counters.iter().sum()
    }

    /// Misses at the full measured associativity (`C_{>A}`).
    pub fn misses(&self) -> f64 {
        *self.counters.last().expect("counters are non-empty")
    }

    /// Hits at the full measured associativity.
    pub fn hits(&self) -> f64 {
        self.accesses() - self.misses()
    }

    /// Hits the stream would see with effective associativity `a` (may be
    /// fractional; clamped to `[0, A]`). Linearly interpolates the counter
    /// that `a` cuts through.
    pub fn hits_at(&self, a: f64) -> f64 {
        let a = a.clamp(0.0, f64::from(self.assoc()));
        let full = a.floor() as usize;
        let frac = a - a.floor();
        let mut hits: f64 = self.counters[..full].iter().sum();
        if frac > 0.0 && full < self.assoc() as usize {
            hits += frac * self.counters[full];
        }
        hits
    }

    /// Misses the stream would see with effective associativity `a`:
    /// `accesses − hits_at(a)`. Monotonically non-increasing in `a`, and
    /// `misses_at(A) == misses()` exactly.
    pub fn misses_at(&self, a: f64) -> f64 {
        self.accesses() - self.hits_at(a)
    }

    /// Derives the counters the same stream would produce on a cache of
    /// associativity `new_assoc ≤ A` (with proportionally more sets, i.e.
    /// constant capacity — the paper's reduced-associativity derivation).
    ///
    /// Hits deeper than the new associativity become misses. This is exact
    /// for the paper's setup of halving associativity at constant capacity
    /// when set-index bits are nested.
    ///
    /// # Panics
    ///
    /// Panics if `new_assoc` is zero or exceeds the measured associativity.
    pub fn fold_to(&self, new_assoc: u32) -> Sdc {
        assert!(new_assoc > 0, "associativity must be positive");
        assert!(
            new_assoc <= self.assoc(),
            "cannot fold {}-way counters up to {new_assoc}-way",
            self.assoc()
        );
        let mut counters = self.counters[..new_assoc as usize].to_vec();
        counters.push(self.counters[new_assoc as usize..].iter().sum());
        Sdc { counters }
    }

    /// Derives the counters for a cache with `new_assoc < A` ways but the
    /// *same capacity* (proportionally more sets) — the configuration
    /// change between the paper's Table 2 rows #2 → #1.
    ///
    /// When the set count multiplies by `r = A / new_assoc`, the `d`
    /// distinct blocks ahead of a depth-`d` hit scatter binomially over
    /// the `r` sets, so the access lands at depth `Binomial(d, 1/r)` of
    /// its new set. This redistributes each counter accordingly; it is
    /// exact under uniform set indexing of the interleaved blocks.
    ///
    /// # Panics
    ///
    /// Panics if `new_assoc` is zero, does not divide the measured
    /// associativity, or exceeds it.
    pub fn derive_capacity_preserving(&self, new_assoc: u32) -> Sdc {
        assert!(new_assoc > 0, "associativity must be positive");
        assert!(new_assoc <= self.assoc(), "cannot derive a larger associativity");
        assert_eq!(
            self.assoc() % new_assoc,
            0,
            "set count must scale by an integer factor"
        );
        if new_assoc == self.assoc() {
            return self.clone();
        }
        let r = f64::from(self.assoc() / new_assoc);
        let p = 1.0 / r;
        let mut counters = vec![0.0; new_assoc as usize + 1];
        for (d, &count) in self.counters()[..self.assoc() as usize].iter().enumerate() {
            if count == 0.0 {
                continue;
            }
            // P(Binomial(d, p) = j), computed iteratively.
            let mut prob =
                (1.0 - p).powi(i32::try_from(d).expect("depth is bounded by assoc")); // j = 0
            for j in 0..=d {
                let target = if j < new_assoc as usize { j } else { new_assoc as usize };
                counters[target] += count * prob;
                // advance to j+1
                if j < d {
                    prob *= ((d - j) as f64 / (j as f64 + 1.0)) * (p / (1.0 - p));
                }
            }
        }
        counters[new_assoc as usize] += self.misses();
        Sdc { counters }
    }

    /// Adds `w × other` into `self` (used to sum per-interval SDCs over a
    /// model window, with fractional coverage at the window edges).
    ///
    /// # Panics
    ///
    /// Panics if the associativities differ or `w` is negative.
    pub fn add_scaled(&mut self, other: &Sdc, w: f64) {
        assert_eq!(self.assoc(), other.assoc(), "associativity mismatch");
        assert!(w >= 0.0, "scale must be non-negative");
        for (dst, src) in self.counters.iter_mut().zip(&other.counters) {
            *dst += w * src;
        }
    }

    /// Returns `w × self` as a new value.
    pub fn scaled(&self, w: f64) -> Sdc {
        let mut out = Sdc::new(self.assoc());
        out.add_scaled(self, w);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Sdc {
        // C_1..C_8 = 80,40,20,10,8,6,4,2 and C_>8 = 30
        let mut sdc = Sdc::new(8);
        let hits = [80, 40, 20, 10, 8, 6, 4, 2];
        for (d, &n) in hits.iter().enumerate() {
            for _ in 0..n {
                sdc.record(Some(d as u32));
            }
        }
        for _ in 0..30 {
            sdc.record(None);
        }
        sdc
    }

    #[test]
    fn totals() {
        let sdc = sample();
        assert_eq!(sdc.accesses(), 200.0);
        assert_eq!(sdc.hits(), 170.0);
        assert_eq!(sdc.misses(), 30.0);
    }

    #[test]
    fn reset_matches_fresh() {
        let mut sdc = sample();
        sdc.reset(8);
        assert_eq!(sdc, Sdc::new(8), "same-assoc reset zeroes in place");
        sdc.record(Some(2));
        sdc.reset(4);
        assert_eq!(sdc, Sdc::new(4), "reset may change the associativity");
    }

    #[test]
    fn misses_at_full_assoc_equals_misses() {
        let sdc = sample();
        assert_eq!(sdc.misses_at(8.0), sdc.misses());
    }

    #[test]
    fn misses_at_zero_is_everything() {
        let sdc = sample();
        assert_eq!(sdc.misses_at(0.0), sdc.accesses());
    }

    #[test]
    fn misses_at_interpolates() {
        let sdc = sample();
        // a=1: only C_1 hits → misses = 200-80 = 120
        assert_eq!(sdc.misses_at(1.0), 120.0);
        // a=1.5: C_1 + half of C_2 → hits 100 → misses 100
        assert_eq!(sdc.misses_at(1.5), 100.0);
    }

    #[test]
    fn misses_at_clamps_out_of_range() {
        let sdc = sample();
        assert_eq!(sdc.misses_at(-3.0), sdc.accesses());
        assert_eq!(sdc.misses_at(100.0), sdc.misses());
    }

    #[test]
    fn fold_matches_misses_at_integer_points() {
        let sdc = sample();
        for a in 1..=8u32 {
            let folded = sdc.fold_to(a);
            assert_eq!(folded.assoc(), a);
            assert!(
                (folded.misses() - sdc.misses_at(f64::from(a))).abs() < 1e-9,
                "assoc {a}"
            );
            assert!((folded.accesses() - sdc.accesses()).abs() < 1e-9);
        }
    }

    #[test]
    fn add_scaled_accumulates() {
        let sdc = sample();
        let mut acc = Sdc::new(8);
        acc.add_scaled(&sdc, 0.5);
        acc.add_scaled(&sdc, 0.25);
        assert!((acc.accesses() - 150.0).abs() < 1e-9);
        assert!((acc.misses() - 22.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "associativity mismatch")]
    fn add_scaled_rejects_mismatch() {
        let mut a = Sdc::new(4);
        a.add_scaled(&Sdc::new(8), 1.0);
    }

    #[test]
    #[should_panic(expected = "hit depth")]
    fn record_rejects_deep_hit() {
        let mut a = Sdc::new(4);
        a.record(Some(4));
    }

    #[test]
    fn capacity_preserving_derivation_conserves_accesses() {
        let sdc = sample();
        let derived = sdc.derive_capacity_preserving(4);
        assert_eq!(derived.assoc(), 4);
        assert!((derived.accesses() - sdc.accesses()).abs() < 1e-9);
        // Misses can only grow (a coarser cache cannot hit more).
        assert!(derived.misses() + 1e-9 >= sdc.misses());
    }

    #[test]
    fn capacity_preserving_is_identity_at_same_assoc() {
        let sdc = sample();
        assert_eq!(sdc.derive_capacity_preserving(8), sdc);
    }

    #[test]
    fn capacity_preserving_beats_naive_fold() {
        // Halving associativity at constant capacity hurts much less than
        // halving associativity at constant sets (half the capacity): the
        // binomial split sends roughly half of each depth's blocks to the
        // other set.
        let sdc = sample();
        let derived = sdc.derive_capacity_preserving(4);
        let folded = sdc.fold_to(4);
        assert!(
            derived.misses() < folded.misses(),
            "constant capacity ({}) vs half capacity ({})",
            derived.misses(),
            folded.misses()
        );
        // Shallow hits survive a capacity-preserving halving almost
        // entirely: depth-0 hits stay depth-0.
        assert!(derived.counters()[0] >= sdc.counters()[0] - 1e-9);
    }

    #[test]
    fn capacity_preserving_shifts_depths_down() {
        // A pure depth-7 profile on 8 ways: with 4 ways and twice the
        // sets, the 7 blocks ahead split Binomial(7, 1/2), so the mean
        // new depth is 3.5 and roughly half the accesses still hit.
        let mut sdc = Sdc::new(8);
        for _ in 0..1000 {
            sdc.record(Some(7));
        }
        let derived = sdc.derive_capacity_preserving(4);
        let hit_rate = derived.hits() / derived.accesses();
        assert!(
            (0.4..0.7).contains(&hit_rate),
            "expected roughly half to survive, got {hit_rate}"
        );
    }

    #[test]
    #[should_panic(expected = "integer factor")]
    fn capacity_preserving_rejects_ragged_ratio() {
        sample().derive_capacity_preserving(3);
    }

    #[test]
    fn serde_round_trip() {
        let sdc = sample();
        let json = serde_json::to_string(&sdc).unwrap();
        let back: Sdc = serde_json::from_str(&json).unwrap();
        assert_eq!(sdc, back);
    }

    proptest! {
        #[test]
        fn misses_monotone_in_assoc(
            counts in proptest::collection::vec(0u32..1000, 9),
            a1 in 0.0f64..8.0,
            a2 in 0.0f64..8.0,
        ) {
            let mut sdc = Sdc::new(8);
            for (d, &n) in counts.iter().enumerate() {
                for _ in 0..n {
                    if d < 8 { sdc.record(Some(d as u32)); } else { sdc.record(None); }
                }
            }
            let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
            prop_assert!(sdc.misses_at(lo) + 1e-9 >= sdc.misses_at(hi));
        }

        #[test]
        fn fold_preserves_accesses_and_prefix(
            counts in proptest::collection::vec(0u32..1000, 9),
            new_assoc in 1u32..=8,
        ) {
            let mut sdc = Sdc::new(8);
            for (d, &n) in counts.iter().enumerate() {
                for _ in 0..n {
                    if d < 8 { sdc.record(Some(d as u32)); } else { sdc.record(None); }
                }
            }
            let folded = sdc.fold_to(new_assoc);
            prop_assert!((folded.accesses() - sdc.accesses()).abs() < 1e-6);
            for d in 0..new_assoc as usize {
                prop_assert_eq!(folded.counters()[d], sdc.counters()[d]);
            }
            // Folding can only increase misses.
            prop_assert!(folded.misses() + 1e-9 >= sdc.misses());
        }

        #[test]
        fn hits_at_bounded_by_totals(
            counts in proptest::collection::vec(0u32..1000, 9),
            a in 0.0f64..10.0,
        ) {
            let mut sdc = Sdc::new(8);
            for (d, &n) in counts.iter().enumerate() {
                for _ in 0..n {
                    if d < 8 { sdc.record(Some(d as u32)); } else { sdc.record(None); }
                }
            }
            let h = sdc.hits_at(a);
            prop_assert!(h >= -1e-9 && h <= sdc.hits() + 1e-9);
        }
    }
}
