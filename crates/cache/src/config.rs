use serde::{Deserialize, Serialize};

/// Geometry and access latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line (block) size in bytes.
    pub line_bytes: u32,
    /// Access latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Creates a config and checks its invariants.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the capacity is not an integer
    /// number of sets of `assoc` lines.
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u32, latency: u32) -> Self {
        let cfg = Self { size_bytes, assoc, line_bytes, latency };
        assert!(size_bytes > 0 && assoc > 0 && line_bytes > 0, "cache dimensions must be positive");
        assert_eq!(
            size_bytes % (u64::from(assoc) * u64::from(line_bytes)),
            0,
            "capacity must be a whole number of sets"
        );
        cfg
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.assoc) * u64::from(self.line_bytes))
    }

    /// Total capacity in lines (blocks).
    pub fn lines(&self) -> u64 {
        self.size_bytes / u64::from(self.line_bytes)
    }

    /// The same cache with a different associativity (and latency),
    /// keeping capacity constant. Used when deriving reduced-associativity
    /// configurations.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not divisible into sets of the new
    /// associativity.
    pub fn with_assoc(&self, assoc: u32, latency: u32) -> Self {
        Self::new(self.size_bytes, assoc, self.line_bytes, latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_math() {
        let c = CacheConfig::new(512 * 1024, 8, 64, 16);
        assert_eq!(c.sets(), 1024);
        assert_eq!(c.lines(), 8192);
    }

    #[test]
    fn with_assoc_keeps_capacity() {
        let c = CacheConfig::new(512 * 1024, 16, 64, 20);
        let d = c.with_assoc(8, 16);
        assert_eq!(d.lines(), c.lines());
        assert_eq!(d.sets(), 2 * c.sets());
        assert_eq!(d.latency, 16);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn rejects_ragged_capacity() {
        CacheConfig::new(1000, 3, 64, 1);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn rejects_zero_assoc() {
        CacheConfig::new(1024, 0, 64, 1);
    }
}
