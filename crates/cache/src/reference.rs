//! The original per-set-`Vec` cache implementation, kept as a
//! differential-testing oracle.
//!
//! [`NaiveCache`] is the pre-optimization [`crate::SetAssocCache`]: each
//! set is its own `Vec<Way>` in recency order, set selection divides by
//! the (not necessarily power-of-two) set count, and recency updates are
//! `Vec::remove` + `Vec::insert` memmoves. It is deliberately simple —
//! every operation is the textbook definition — so it serves as the
//! executable specification the flat kernel is property-tested against
//! (`tests/differential.rs` asserts bit-identical [`AccessResult`]s,
//! counters and occupancy over random configurations and access streams,
//! including mid-stream [`NaiveCache::reset`]). The benches keep it
//! around too, so the kernel speedup stays measurable on one build.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{AccessResult, CacheConfig, Replacement};

#[derive(Debug, Clone, Copy)]
struct Way {
    block: u64,
    inserted: u64,
}

/// The textbook set-associative cache: per-set `Vec`s, modulo set
/// indexing, memmove-based recency. Observationally identical to
/// [`crate::SetAssocCache`] (which additionally requires power-of-two
/// set counts); kept as the oracle for differential tests and as the
/// baseline for kernel benchmarks.
#[derive(Debug, Clone)]
pub struct NaiveCache {
    config: CacheConfig,
    /// Per-set ways in recency order (MRU first).
    sets: Vec<Vec<Way>>,
    replacement: Replacement,
    rng: Option<SmallRng>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl NaiveCache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig, replacement: Replacement) -> Self {
        let sets = vec![Vec::with_capacity(config.assoc as usize); config.sets() as usize];
        let rng = match replacement {
            Replacement::Random { seed } => Some(SmallRng::seed_from_u64(seed)),
            _ => None,
        };
        Self { config, sets, replacement, rng, tick: 0, hits: 0, misses: 0 }
    }

    /// The cache's configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Total hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Accesses `block`, filling it on a miss. Same contract as
    /// [`crate::SetAssocCache::access`].
    pub fn access(&mut self, block: u64) -> AccessResult {
        self.tick += 1;
        let set_idx = (block % self.config.sets()) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|w| w.block == block) {
            let way = set.remove(pos);
            set.insert(0, way);
            self.hits += 1;
            // mppm-lint: allow(lossy-counter-cast): pos < assoc <= u32::MAX; hot kernel path stays branch-free
            return AccessResult { hit: true, depth: Some(pos as u32), evicted: None };
        }
        self.misses += 1;
        let evicted = if set.len() == self.config.assoc as usize {
            let victim_pos = match self.replacement {
                Replacement::Lru => set.len() - 1,
                Replacement::Fifo => {
                    let (pos, _) = set
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, w)| w.inserted)
                        .expect("set is non-empty");
                    pos
                }
                Replacement::Random { .. } => {
                    let rng = self.rng.as_mut().expect("random policy has an rng");
                    rng.gen_range(0..set.len())
                }
            };
            Some(set.remove(victim_pos).block)
        } else {
            None
        };
        set.insert(0, Way { block, inserted: self.tick });
        AccessResult { hit: false, depth: None, evicted }
    }

    /// Whether `block` is currently resident (does not touch recency).
    pub fn contains(&self, block: u64) -> bool {
        let set_idx = (block % self.config.sets()) as usize;
        self.sets[set_idx].iter().any(|w| w.block == block)
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> u64 {
        self.sets.iter().map(|s| s.len() as u64).sum()
    }

    /// Invalidates everything and clears statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        if let Replacement::Random { seed } = self.replacement {
            self.rng = Some(SmallRng::seed_from_u64(seed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_cache_still_behaves_like_a_cache() {
        // Smoke coverage; the real examination is tests/differential.rs.
        let mut c = NaiveCache::new(CacheConfig::new(4 * 4 * 64, 4, 64, 1), Replacement::Lru);
        assert!(!c.access(3).hit);
        assert_eq!(c.access(3).depth, Some(0));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.occupancy(), 1);
        c.reset();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn naive_cache_supports_non_power_of_two_sets() {
        // The oracle keeps the fully general modulo path the flat kernel
        // gave up.
        let mut c = NaiveCache::new(CacheConfig::new(3 * 2 * 64, 2, 64, 1), Replacement::Lru);
        assert_eq!(c.config().sets(), 3);
        for b in 0..12u64 {
            c.access(b);
        }
        assert_eq!(c.occupancy(), 6);
    }
}
