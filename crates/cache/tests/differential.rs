//! Differential oracle: the flat [`SetAssocCache`] kernel against the
//! naive per-set-`Vec` reference implementation it replaced.
//!
//! The two must be **bit-identical** observationally: every access
//! returns the same [`mppm_cache::AccessResult`] (hit flag, LRU-stack
//! depth, evicted block), and hit/miss counters, occupancy and residency
//! agree at every point — under LRU, FIFO and seeded-Random replacement,
//! across random geometries and access streams, including `reset()` in
//! the middle of a stream. Random replacement is the strictest case: both
//! implementations must consume their RNG in exactly the same call order
//! or the streams diverge immediately.

use mppm_cache::reference::NaiveCache;
use mppm_cache::{CacheConfig, Replacement, SetAssocCache};
use proptest::prelude::*;

/// One step of a differential run.
#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64),
    Reset,
}

/// Decodes the raw generated stream: selector 0 (1-in-32) resets
/// mid-stream, everything else accesses `block % span`.
fn decode(raw: &[(u8, u64)], span: u64) -> Vec<Op> {
    raw.iter()
        .map(|&(sel, block)| if sel == 0 { Op::Reset } else { Op::Access(block % span) })
        .collect()
}

/// Runs `ops` against both implementations, asserting bit-identical
/// observable behavior at every step.
fn assert_bit_identical(cfg: CacheConfig, policy: Replacement, ops: &[Op], span: u64) {
    let mut flat = SetAssocCache::new(cfg, policy);
    let mut naive = NaiveCache::new(cfg, policy);
    assert_eq!(flat.config(), naive.config());
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Access(block) => {
                let a = flat.access(block);
                let b = naive.access(block);
                assert_eq!(a, b, "step {step}: access({block}) diverged under {policy:?}");
            }
            Op::Reset => {
                flat.reset();
                naive.reset();
            }
        }
        assert_eq!(flat.hits(), naive.hits(), "step {step}: hit counters");
        assert_eq!(flat.misses(), naive.misses(), "step {step}: miss counters");
        assert_eq!(flat.occupancy(), naive.occupancy(), "step {step}: occupancy");
    }
    // Residency agrees over the whole block domain, not just touched
    // blocks.
    for block in 0..span {
        assert_eq!(
            flat.contains(block),
            naive.contains(block),
            "contains({block}) diverged under {policy:?}"
        );
    }
}

fn spans() -> [u64; 3] {
    // Hit-heavy, mixed, and miss-heavy regimes.
    [24, 300, 4096]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LRU and FIFO: bit-identical over random geometries and streams
    /// with mid-stream resets.
    #[test]
    fn deterministic_policies_match_oracle(
        raw in proptest::collection::vec((0u8..32, 0u64..1 << 48), 1..350),
        assoc in 1u32..9,
        sets_pow in 0u32..5,
        span_sel in 0usize..3,
        line_sel in 0usize..3,
    ) {
        let sets = 1u64 << sets_pow;
        let line = [32u32, 64, 128][line_sel];
        let cfg =
            CacheConfig::new(sets * u64::from(assoc) * u64::from(line), assoc, line, 1);
        let span = spans()[span_sel];
        let ops = decode(&raw, span);
        for policy in [Replacement::Lru, Replacement::Fifo] {
            assert_bit_identical(cfg, policy, &ops, span);
        }
    }

    /// Seeded-Random replacement: both sides must draw victims in the
    /// identical RNG call order, stream after stream, reset after reset.
    #[test]
    fn random_policy_matches_oracle(
        raw in proptest::collection::vec((0u8..32, 0u64..1 << 48), 1..350),
        assoc in 1u32..9,
        sets_pow in 0u32..5,
        span_sel in 0usize..3,
        line_sel in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let sets = 1u64 << sets_pow;
        let line = [32u32, 64, 128][line_sel];
        let cfg =
            CacheConfig::new(sets * u64::from(assoc) * u64::from(line), assoc, line, 1);
        let span = spans()[span_sel];
        let ops = decode(&raw, span);
        assert_bit_identical(cfg, Replacement::Random { seed }, &ops, span);
    }

    /// The simulator's core-tagging pattern (ids ORed in above bit 44)
    /// must not perturb equivalence.
    #[test]
    fn tagged_blocks_match_oracle(
        raw in proptest::collection::vec((0u8..32, 0u64..256), 1..200),
        cores in 1u64..5,
    ) {
        // The baseline L1D: 64 sets, 8 ways.
        let cfg = CacheConfig::new(32 * 1024, 8, 64, 4);
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(sel, block)| {
                if sel == 0 {
                    Op::Reset
                } else {
                    let core = sel as u64 % cores;
                    Op::Access(((core + 1) << 44) | block)
                }
            })
            .collect();
        for policy in [Replacement::Lru, Replacement::Fifo, Replacement::Random { seed: 7 }] {
            let mut flat = SetAssocCache::new(cfg, policy);
            let mut naive = NaiveCache::new(cfg, policy);
            for op in &ops {
                match *op {
                    Op::Access(b) => prop_assert_eq!(flat.access(b), naive.access(b)),
                    Op::Reset => {
                        flat.reset();
                        naive.reset();
                    }
                }
            }
            prop_assert_eq!(flat.hits(), naive.hits());
            prop_assert_eq!(flat.misses(), naive.misses());
        }
    }
}

/// A long deterministic soak at the baseline LLC geometry — the exact
/// cache the multi-core simulator contends on.
#[test]
fn llc_geometry_soak() {
    // LLC config #1: 512KB, 8-way, 64B lines (1024 sets).
    let cfg = CacheConfig::new(512 * 1024, 8, 64, 16);
    for policy in [Replacement::Lru, Replacement::Fifo, Replacement::Random { seed: 2011 }] {
        let mut flat = SetAssocCache::new(cfg, policy);
        let mut naive = NaiveCache::new(cfg, policy);
        // LCG walk over a footprint ~2x the cache, with periodic resets.
        let mut block = 1u64;
        for step in 0..200_000u64 {
            if step % 70_001 == 70_000 {
                flat.reset();
                naive.reset();
            }
            block = block.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = block % 16_384;
            assert_eq!(flat.access(b), naive.access(b), "step {step} under {policy:?}");
        }
        assert_eq!(flat.hits(), naive.hits());
        assert_eq!(flat.misses(), naive.misses());
        assert_eq!(flat.occupancy(), naive.occupancy());
    }
}
