//! Shared memory channel with finite bandwidth — the paper's §8
//! "bandwidth sharing" future-work extension.
//!
//! The baseline machine (Table 1) models memory as a flat 200-cycle
//! latency with unlimited concurrency. With a bandwidth limit configured
//! ([`crate::MachineConfig::mem_bandwidth`]), the off-chip channel can
//! *start* one access every `1/bandwidth` cycles; LLC misses arriving
//! faster queue up, and the queueing delay adds to each miss's latency.
//! Co-running programs now interfere through the channel even when their
//! cache footprints are disjoint.

/// The shared off-chip channel.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryChannel {
    /// Accesses the channel can start per cycle (`None` = unlimited, the
    /// paper's baseline).
    bandwidth: Option<f64>,
    /// Cycle at which the channel is next free.
    next_free: f64,
    /// Total queueing cycles imposed so far.
    total_queue_cycles: f64,
    /// Total requests served.
    requests: u64,
}

impl MemoryChannel {
    /// Creates a channel with the given bandwidth (accesses per cycle).
    ///
    /// # Panics
    ///
    /// Panics if a bandwidth is given that is not finite and positive.
    pub fn new(bandwidth: Option<f64>) -> Self {
        if let Some(b) = bandwidth {
            assert!(b.is_finite() && b > 0.0, "bandwidth must be positive");
        }
        Self { bandwidth, next_free: 0.0, total_queue_cycles: 0.0, requests: 0 }
    }

    /// Requests the channel at time `now`, returning the queueing delay in
    /// cycles (0 for an unlimited channel).
    pub fn request(&mut self, now: f64) -> f64 {
        self.requests += 1;
        let Some(bandwidth) = self.bandwidth else {
            return 0.0;
        };
        let start = now.max(self.next_free);
        self.next_free = start + 1.0 / bandwidth;
        let delay = start - now;
        self.total_queue_cycles += delay;
        delay
    }

    /// Average queueing delay per request so far.
    pub fn avg_queue_cycles(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_queue_cycles / self.requests as f64
        }
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_channel_never_queues() {
        let mut ch = MemoryChannel::new(None);
        for i in 0..100 {
            assert_eq!(ch.request(i as f64 * 0.01), 0.0);
        }
        assert_eq!(ch.avg_queue_cycles(), 0.0);
        assert_eq!(ch.requests(), 100);
    }

    #[test]
    fn saturated_channel_serializes() {
        // One access per 10 cycles; requests arriving every cycle queue up
        // linearly.
        let mut ch = MemoryChannel::new(Some(0.1));
        assert_eq!(ch.request(0.0), 0.0);
        assert_eq!(ch.request(1.0), 9.0, "second waits for the first's slot");
        assert_eq!(ch.request(2.0), 18.0);
        assert!(ch.avg_queue_cycles() > 0.0);
    }

    #[test]
    fn idle_channel_recovers() {
        let mut ch = MemoryChannel::new(Some(0.1));
        ch.request(0.0);
        // Long after the busy period: no delay.
        assert_eq!(ch.request(1000.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        MemoryChannel::new(Some(0.0));
    }
}
