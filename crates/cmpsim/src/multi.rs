//! Detailed multi-core simulation of a multi-program workload.
//!
//! Two interleaving schedulers drive a mix, proven observationally
//! bit-identical by a differential oracle (`tests/differential.rs`):
//!
//! * [`event_interleave`] — the production scheduler. Each core executes
//!   compute items and private L1/L2 hits in a local *burst*
//!   ([`CoreEngine::run_until_llc`]) that touches no shared state; only
//!   shared-LLC/memory-channel events enter a binary heap keyed on
//!   `(arrival timestamp, core index)` and commit in that order. Cost per
//!   shared event is O(log cores), and the vast majority of trace items
//!   never pay any global-ordering cost at all.
//! * [`reference_interleave`] — the original smallest-clock-first loop
//!   that re-scans every core's clock for every trace item (O(cores) per
//!   item). Kept as the oracle the event scheduler is differential-tested
//!   against.
//!
//! Both commit shared events in identical order because smallest-clock-
//! first stepping *is* a merge of the per-core step sequences by
//! `(pre-step clock, core index)` — see DESIGN.md §9 for the argument.

use mppm_obs::{Span, Value};
use mppm_trace::{BenchmarkSpec, CompiledTrace, TraceGeometry};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, BTreeMap};
use std::sync::atomic::{AtomicU64, Ordering as MemOrdering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::arena::{PtrMap, SimArena};
use crate::{BurstStop, CoreEngine, LlcMode, MachineConfig, Uncore};

/// Measured outcome of one multi-program workload on the detailed
/// simulator.
///
/// Serializable so experiment harnesses can pin full results as golden
/// snapshots (floats survive the JSON round trip bit-exactly).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MixResult {
    /// Benchmark name per core.
    pub names: Vec<String>,
    /// Measured multi-core CPI per program, over its measurement trace
    /// (the first full trace after warmup).
    pub cpi_mc: Vec<f64>,
    /// Cycles each program's measurement window took (first-trace
    /// completion minus its warmup end).
    pub completion_cycles: Vec<f64>,
    /// Instructions in one trace (the measurement window per program).
    pub trace_insns: u64,
    /// Shared-LLC accesses observed during the whole run.
    pub llc_accesses: u64,
    /// Shared-LLC misses observed during the whole run.
    pub llc_misses: u64,
    /// Shared-LLC accesses per core over the whole run (scheduler-observed
    /// traffic; sums to [`MixResult::llc_accesses`]). Defaults to empty
    /// when absent from older snapshots.
    #[serde(default)]
    pub llc_accesses_per_core: Vec<u64>,
    /// Shared-LLC misses per core over the whole run (sums to
    /// [`MixResult::llc_misses`]).
    #[serde(default)]
    pub llc_misses_per_core: Vec<u64>,
}

impl MixResult {
    /// System throughput against the supplied isolated CPIs.
    ///
    /// # Panics
    ///
    /// Panics if `cpi_sc` has the wrong length (see
    /// [`mppm::metrics::stp`]).
    pub fn stp(&self, cpi_sc: &[f64]) -> f64 {
        mppm::metrics::stp(cpi_sc, &self.cpi_mc)
    }

    /// Average normalized turnaround time against the supplied isolated
    /// CPIs.
    ///
    /// # Panics
    ///
    /// Panics if `cpi_sc` has the wrong length.
    pub fn antt(&self, cpi_sc: &[f64]) -> f64 {
        mppm::metrics::antt(cpi_sc, &self.cpi_mc)
    }
}

/// Builder for one multi-program mix simulation — the single entry
/// point that consolidated the old `simulate_mix*` free-function family
/// (each survives as a thin deprecated wrapper over this type).
///
/// Defaults match `simulate_mix`: one warmup pass, unified LLC,
/// homogeneous cores, the event-driven scheduler, no observer.
///
/// ```
/// use mppm_sim::{MachineConfig, MixSim};
/// use mppm_trace::{suite, TraceGeometry};
///
/// let gamess = suite::benchmark("gamess").unwrap();
/// let lbm = suite::benchmark("lbm").unwrap();
/// let result = MixSim::new(&[gamess, lbm], &MachineConfig::baseline(), TraceGeometry::tiny())
///     .run();
/// assert_eq!(result.names, vec!["gamess", "lbm"]);
/// ```
#[must_use = "configure the mix, then call `.run()`"]
pub struct MixSim<'a> {
    specs: &'a [&'a BenchmarkSpec],
    machine: &'a MachineConfig,
    geometry: TraceGeometry,
    warmup_passes: u32,
    ways: Option<&'a [u32]>,
    core_factors: Option<&'a [f64]>,
    scheduler: Scheduler,
    execution: Execution,
    observer: Option<&'a Span>,
    trace_cache: Option<&'a TraceCache>,
    arena: Option<&'a mut SimArena>,
}

impl<'a> MixSim<'a> {
    /// A mix of `specs`, one core each, on `machine` with `geometry`.
    pub fn new(
        specs: &'a [&'a BenchmarkSpec],
        machine: &'a MachineConfig,
        geometry: TraceGeometry,
    ) -> Self {
        Self {
            specs,
            machine,
            geometry,
            warmup_passes: 1,
            ways: None,
            core_factors: None,
            scheduler: Scheduler::default(),
            execution: Execution::default(),
            observer: None,
            trace_cache: None,
            arena: None,
        }
    }

    /// Full warmup trace passes per program before measurement
    /// (default 1).
    pub fn warmup_passes(mut self, passes: u32) -> Self {
        self.warmup_passes = passes;
        self
    }

    /// Way-partitions the LLC: core `i` owns `ways[i]` ways of every
    /// set (paper §2.3's partitioning discussion).
    pub fn partitioned(mut self, ways: &'a [u32]) -> Self {
        self.ways = Some(ways);
        self
    }

    /// Scales per-core compute throughput by `1/core_factors[i]`
    /// (1.0 = the baseline big core, 2.0 = a half-throughput little
    /// core) — the §8 heterogeneity extension.
    pub fn core_factors(mut self, factors: &'a [f64]) -> Self {
        self.core_factors = Some(factors);
        self
    }

    /// Selects the interleaving scheduler (default
    /// [`Scheduler::EventDriven`]).
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Selects how trace items are produced (default
    /// [`Execution::Compiled`]).
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Attaches an observability span: the run emits one `mix-config`
    /// event, one `core` event per program, `llc`/`scheduler` counter
    /// summaries, and publishes registry counters — all at the end of
    /// the run, never from the hot loops. A disabled span costs
    /// nothing.
    pub fn observer(mut self, span: &'a Span) -> Self {
        self.observer = Some(span);
        self
    }

    /// Resolves compiled traces through a shared [`TraceCache`] instead
    /// of compiling fresh on every run. Long-lived processes (the
    /// `mppmd` daemon, the experiment store) hand the same cache to
    /// every run so each `(benchmark, geometry)` pair compiles once per
    /// process. Has no effect under [`Execution::ReferenceStream`].
    pub fn trace_cache(mut self, cache: &'a TraceCache) -> Self {
        self.trace_cache = Some(cache);
        self
    }

    /// Runs this mix through a reusable [`SimArena`]: engines, cache
    /// slabs, the scheduler heap, and all interleaver bookkeeping are
    /// *reset in place* instead of reallocated, so a warm arena makes
    /// the whole run allocation-free at steady state (proven by the
    /// counting-allocator harness in `tests/alloc_steady.rs`).
    ///
    /// Results are bit-identical with or without an arena: the no-arena
    /// path constructs a throwaway arena internally, so both run the
    /// exact same code. See DESIGN.md §14 for the ownership model.
    pub fn arena(mut self, arena: &'a mut SimArena) -> Self {
        self.arena = Some(arena);
        self
    }

    /// Runs the simulation.
    ///
    /// Cores advance in local-time order (the core with the smallest
    /// local clock steps next), so shared-LLC accesses from different
    /// cores interleave in approximate timestamp order. Every program
    /// keeps re-iterating its trace until *all* programs have completed
    /// their measurement pass — the re-iteration methodology of Tuck &
    /// Tullsen / FAME — so contention stays live throughout. Each
    /// program first executes `warmup_passes` full traces (warming the
    /// caches, mirroring [`crate::profile_single_core`]); its
    /// multi-core CPI is then measured over its next full trace.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, or a configured `ways`/`core_factors`
    /// slice has the wrong length, or the ways do not sum to the LLC
    /// associativity.
    pub fn run(self) -> MixResult {
        let mut out = MixResult::default();
        self.run_into(&mut out);
        out
    }

    /// Runs the simulation, writing the result into `out` in place.
    ///
    /// Equivalent to [`MixSim::run`] but reuses `out`'s existing vector
    /// capacity — combined with [`MixSim::arena`], a steady-state caller
    /// (campaign shard worker, daemon request loop) performs zero heap
    /// allocations per mix. `out`'s previous contents are overwritten
    /// entirely.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MixSim::run`].
    pub fn run_into(mut self, out: &mut MixResult) {
        assert!(!self.specs.is_empty(), "a mix needs at least one program");
        // Without a caller-provided arena, run through a throwaway one:
        // the cold-arena path is exactly the old allocate-per-run
        // behavior, and both paths execute the same code.
        let mut local;
        let scratch = match self.arena.take() {
            Some(arena) => arena,
            None => {
                local = SimArena::new();
                &mut local
            }
        };
        let SimArena { uncore: uncore_slot, engines, heap, state, unit_factors, dedup, memo } =
            scratch;
        if let Some(ways) = self.ways {
            assert_eq!(ways.len(), self.specs.len(), "one way count per program");
        }
        match uncore_slot {
            Some(u) => u.reinit(self.machine, self.ways),
            None => {
                *uncore_slot = Some(match self.ways {
                    Some(ways) => Uncore::partitioned(self.machine, ways),
                    None => Uncore::new(self.machine),
                });
            }
        }
        let Some(uncore) = uncore_slot else { unreachable!("the uncore slot was just filled") };
        let factors = match self.core_factors {
            Some(f) => {
                assert_eq!(f.len(), self.specs.len(), "one core factor per program");
                f
            }
            None => {
                unit_factors.clear();
                unit_factors.resize(self.specs.len(), 1.0);
                unit_factors
            }
        };
        let disabled = Span::disabled();
        let span = self.observer.unwrap_or(&disabled);
        run_mix_into(
            self.specs,
            self.machine,
            self.geometry,
            self.warmup_passes,
            uncore,
            factors,
            self.scheduler,
            self.execution,
            self.trace_cache,
            span,
            engines,
            heap,
            state,
            dedup,
            memo,
            out,
        );
    }
}

/// Cross-run cache of compiled traces, shared by reference between
/// [`MixSim`] runs (see [`MixSim::trace_cache`]).
///
/// Keys are `(benchmark name, geometry)`: suite names uniquely identify
/// benchmark parameters (the suite version stamp governs retuning), so
/// callers must pass canonical suite specs. A debug assertion checks the
/// cached trace's spec against the requested one.
///
/// Determinism: a [`CompiledTrace`] is a pure function of
/// `(spec, geometry)`, so cache warmth cannot affect simulation results,
/// and the per-mix `batch` span event counts *resolved* traces (warm or
/// freshly compiled alike) so observed event streams stay byte-identical
/// regardless of cache state or thread interleaving. Process-wide
/// hit/compile totals live in [`TraceCache::stats`].
#[derive(Debug, Default)]
pub struct TraceCache {
    slots: Mutex<BTreeMap<(String, u64, u32), Arc<CompiledTrace>>>,
    hits: AtomicU64,
    compiles: AtomicU64,
}

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the compiled trace for `(spec, geometry)`, compiling it
    /// on first use. Compilation happens outside the cache lock; if two
    /// threads race on the same cold key, the first insertion wins and
    /// the duplicate work is discarded.
    pub fn get_or_compile(
        &self,
        spec: &BenchmarkSpec,
        geometry: TraceGeometry,
    ) -> Arc<CompiledTrace> {
        let key = (spec.name().to_string(), geometry.interval_insns, geometry.intervals);
        if let Some(trace) = self.lock().get(&key) {
            debug_assert_eq!(trace.spec().name(), spec.name(), "cache key matches its spec");
            self.hits.fetch_add(1, MemOrdering::Relaxed);
            return Arc::clone(trace);
        }
        let fresh = Arc::new(CompiledTrace::compile(spec.clone(), geometry));
        self.compiles.fetch_add(1, MemOrdering::Relaxed);
        Arc::clone(self.lock().entry(key).or_insert(fresh))
    }

    /// `(hits, compiles)` so far. Lost races count as compiles: the
    /// totals measure work spent, not slots filled.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(MemOrdering::Relaxed), self.compiles.load(MemOrdering::Relaxed))
    }

    /// Number of distinct `(benchmark, geometry)` pairs cached.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<(String, u64, u32), Arc<CompiledTrace>>> {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Simulates `specs` co-running on one core each, sharing the machine's
/// LLC, with one warmup trace pass per program.
///
/// # Panics
///
/// Panics if `specs` is empty.
#[deprecated(since = "0.2.0", note = "use `MixSim::new(specs, machine, geometry).run()`")]
pub fn simulate_mix(
    specs: &[&BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
) -> MixResult {
    MixSim::new(specs, machine, geometry).run()
}

/// Simulates `specs` co-running on one core each, sharing the machine's
/// LLC, with `warmup_passes` warmup trace passes (see [`MixSim::run`]
/// for the interleaving and measurement methodology).
///
/// # Panics
///
/// Panics if `specs` is empty.
#[deprecated(
    since = "0.2.0",
    note = "use `MixSim::new(specs, machine, geometry).warmup_passes(n).run()`"
)]
pub fn simulate_mix_with(
    specs: &[&BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
    warmup_passes: u32,
) -> MixResult {
    MixSim::new(specs, machine, geometry).warmup_passes(warmup_passes).run()
}

/// Simulates `specs` on a machine whose LLC is *way-partitioned*: core
/// `i` owns `ways[i]` ways of every set (paper §2.3's partitioning
/// discussion). One warmup pass.
///
/// # Panics
///
/// Panics if `specs` is empty, `ways.len() != specs.len()`, or the ways
/// do not sum to the LLC associativity.
#[deprecated(
    since = "0.2.0",
    note = "use `MixSim::new(specs, machine, geometry).partitioned(ways).run()`"
)]
pub fn simulate_mix_partitioned(
    specs: &[&BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
    ways: &[u32],
) -> MixResult {
    MixSim::new(specs, machine, geometry).partitioned(ways).run()
}

/// Simulates `specs` on a *heterogeneous* multi-core (§8 extension):
/// core `i`'s compute throughput is scaled by `1/core_factors[i]` (1.0 =
/// the baseline big core, 2.0 = a half-throughput little core). The LLC
/// stays unified and shared; one warmup pass.
///
/// # Panics
///
/// Panics if `specs` is empty or `core_factors.len() != specs.len()`.
#[deprecated(
    since = "0.2.0",
    note = "use `MixSim::new(specs, machine, geometry).core_factors(f).run()`"
)]
pub fn simulate_mix_heterogeneous(
    specs: &[&BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
    core_factors: &[f64],
) -> MixResult {
    MixSim::new(specs, machine, geometry).core_factors(core_factors).run()
}

/// How trace items are produced during a mix simulation.
///
/// Both modes are bit-identical — proven by the compiled-vs-reference
/// property of the differential oracle
/// (`crates/cmpsim/tests/differential.rs`) and the pinned golden
/// snapshot — so the choice is purely a speed/memory trade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// Compile each distinct spec's phases into flat
    /// [`CompiledTrace`] blocks once, then replay them on every pass
    /// (warmup, measurement, FAME re-iteration) and on every core
    /// running the same spec. The production default: amortizes address
    /// generation, classification, and gap sampling across passes.
    #[default]
    Compiled,
    /// Generate every item live from the per-core
    /// [`mppm_trace::TraceStream`] — the original per-item path, kept
    /// as the reference the compiled substrate is tested against and
    /// for before/after benchmarking.
    ReferenceStream,
}

/// Which interleaving scheduler drives a mix simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Event-driven: private bursts plus a binary heap over shared-LLC
    /// events, O(log cores) per shared event. The production scheduler.
    #[default]
    EventDriven,
    /// The original smallest-clock-first per-item loop, O(cores) per
    /// trace item. Kept as the differential-testing oracle and for
    /// before/after benchmarking.
    Reference,
}

/// Full-control options for the deprecated [`simulate_mix_opts`] entry
/// point. New code should use the [`MixSim`] builder, which covers the
/// same axes.
#[derive(Debug, Clone, Copy)]
pub struct MixOptions<'a> {
    /// Full warmup trace passes per program before measurement
    /// (default 1).
    pub warmup_passes: u32,
    /// `Some(ways)` way-partitions the LLC as in
    /// [`MixSim::partitioned`]; `None` keeps it unified.
    pub ways: Option<&'a [u32]>,
    /// `Some(factors)` scales per-core compute throughput as in
    /// [`MixSim::core_factors`]; `None` runs homogeneous cores.
    pub core_factors: Option<&'a [f64]>,
    /// Interleaving scheduler (default [`Scheduler::EventDriven`]).
    pub scheduler: Scheduler,
}

impl Default for MixOptions<'_> {
    fn default() -> Self {
        Self { warmup_passes: 1, ways: None, core_factors: None, scheduler: Scheduler::default() }
    }
}

/// Simulates `specs` co-running under explicit [`MixOptions`] — the
/// option-struct predecessor of the [`MixSim`] builder.
///
/// # Panics
///
/// Panics if `specs` is empty or an option slice has the wrong length.
#[deprecated(since = "0.2.0", note = "use the `MixSim` builder")]
pub fn simulate_mix_opts(
    specs: &[&BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
    opts: &MixOptions,
) -> MixResult {
    let mut sim = MixSim::new(specs, machine, geometry)
        .warmup_passes(opts.warmup_passes)
        .scheduler(opts.scheduler);
    if let Some(ways) = opts.ways {
        sim = sim.partitioned(ways);
    }
    if let Some(factors) = opts.core_factors {
        sim = sim.core_factors(factors);
    }
    sim.run()
}

/// Total-order scheduling key: earliest local time first, core index as
/// the deterministic tie-break. Shared by the event heap and the
/// reference interleaver so both resolve timestamp ties identically.
///
/// Clocks are finite and non-negative, where [`f64::total_cmp`] coincides
/// with numeric order — this replaces the old
/// `partial_cmp(..).expect("clocks are finite")` scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedKey {
    /// Local-clock timestamp, in cycles.
    pub time: f64,
    /// Core index; ties dispatch the lowest index first.
    pub core: usize,
}

impl Eq for SchedKey {}

impl Ord for SchedKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.total_cmp(&other.time).then(self.core.cmp(&other.core))
    }
}

impl PartialOrd for SchedKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-core outcome of interleaving a mix until every program finished
/// its measurement trace.
#[derive(Debug, Clone, PartialEq)]
pub struct InterleaveOutcome {
    /// Local clock at which each core's measurement window opened.
    pub measure_start: Vec<f64>,
    /// Local clock at which each core finished its measurement trace.
    pub completion: Vec<f64>,
    /// Shared-LLC accesses committed per core over the whole run.
    pub llc_accesses: Vec<u64>,
    /// Shared-LLC misses per core over the whole run.
    pub llc_misses: Vec<u64>,
    /// Events pushed onto the scheduler heap ([`event_interleave`]
    /// only; zero under the reference interleaver, which has no heap).
    pub heap_pushes: u64,
    /// Events popped off the scheduler heap (zero under the reference
    /// interleaver).
    pub heap_pops: u64,
}

/// Shared bookkeeping for both interleavers: measurement-window records
/// and per-core LLC traffic counters. Pooled inside [`SimArena`] so a
/// warm arena resets it in place instead of reallocating the vectors.
pub(crate) struct InterleaveState {
    measure_start: Vec<Option<f64>>,
    completion: Vec<Option<f64>>,
    llc_accesses: Vec<u64>,
    llc_misses: Vec<u64>,
    heap_pushes: u64,
    heap_pops: u64,
    remaining: usize,
    warmup_insns: u64,
    trace_insns: u64,
}

impl InterleaveState {
    /// A zero-core placeholder holding no allocations; [`Self::reset`]
    /// shapes it for a run.
    pub(crate) fn empty() -> Self {
        Self {
            measure_start: Vec::new(),
            completion: Vec::new(),
            llc_accesses: Vec::new(),
            llc_misses: Vec::new(),
            heap_pushes: 0,
            heap_pops: 0,
            remaining: 0,
            warmup_insns: 0,
            trace_insns: 0,
        }
    }

    fn new(cores: usize, warmup_insns: u64, trace_insns: u64) -> Self {
        let mut state = Self::empty();
        state.reset(cores, warmup_insns, trace_insns);
        state
    }

    /// Re-shapes the state for a fresh run, reusing vector capacity.
    /// After this the state is indistinguishable from a newly built one.
    fn reset(&mut self, cores: usize, warmup_insns: u64, trace_insns: u64) {
        // Cycle 0 is the measurement start when there is no warmup.
        let start = if warmup_insns == 0 { Some(0.0) } else { None };
        self.measure_start.clear();
        self.measure_start.resize(cores, start);
        self.completion.clear();
        self.completion.resize(cores, None);
        self.llc_accesses.clear();
        self.llc_accesses.resize(cores, 0);
        self.llc_misses.clear();
        self.llc_misses.resize(cores, 0);
        self.heap_pushes = 0;
        self.heap_pops = 0;
        self.remaining = cores;
        self.warmup_insns = warmup_insns;
        self.trace_insns = trace_insns;
    }

    /// Records window boundaries the just-executed step of core `idx` may
    /// have crossed. Returns `true` when every core has completed.
    fn record_thresholds(&mut self, engines: &[CoreEngine], idx: usize) -> bool {
        let e = &engines[idx];
        if self.measure_start[idx].is_none() && e.insns() >= self.warmup_insns {
            self.measure_start[idx] = Some(e.cycles());
        }
        if self.completion[idx].is_none() && e.insns() >= self.warmup_insns + self.trace_insns {
            self.completion[idx] = Some(e.cycles());
            self.remaining -= 1;
        }
        self.remaining == 0
    }

    /// The next instruction count of interest for core `idx`: its first
    /// uncrossed window boundary, capped at one `chunk` ahead so cores
    /// that generate no shared events still yield to the scheduler.
    fn next_limit(&self, engines: &[CoreEngine], idx: usize, chunk: u64) -> u64 {
        let threshold = if self.measure_start[idx].is_none() {
            self.warmup_insns
        } else if self.completion[idx].is_none() {
            self.warmup_insns + self.trace_insns
        } else {
            u64::MAX
        };
        threshold.min(engines[idx].insns().saturating_add(chunk))
    }

    fn tally_llc(&mut self, idx: usize, miss: bool) {
        self.llc_accesses[idx] += 1;
        if miss {
            self.llc_misses[idx] += 1;
        }
    }

    fn finish(self) -> InterleaveOutcome {
        InterleaveOutcome {
            measure_start: self
                .measure_start
                .into_iter()
                .map(|s| s.expect("warmup completed before the run ended"))
                .collect(),
            completion: self
                .completion
                .into_iter()
                .map(|c| c.expect("all programs completed"))
                .collect(),
            llc_accesses: self.llc_accesses,
            llc_misses: self.llc_misses,
            heap_pushes: self.heap_pushes,
            heap_pops: self.heap_pops,
        }
    }
}

/// The original smallest-clock-first interleaver: for every trace item,
/// scan all core clocks and step the earliest core. O(cores) per item.
///
/// Runs every program through `warmup_insns` warmup instructions plus a
/// `trace_insns`-long measurement window, keeping all cores running (the
/// FAME re-iteration methodology) until the last program completes.
///
/// # Panics
///
/// Panics if `engines` is empty.
pub fn reference_interleave(
    engines: &mut [CoreEngine],
    uncore: &mut Uncore,
    warmup_insns: u64,
    trace_insns: u64,
) -> InterleaveOutcome {
    let mut state = InterleaveState::new(engines.len(), warmup_insns, trace_insns);
    reference_interleave_into(engines, uncore, &mut state);
    state.finish()
}

/// [`reference_interleave`] over caller-owned (arena-pooled) state; the
/// outcome is left in `state` instead of being collected.
fn reference_interleave_into(
    engines: &mut [CoreEngine],
    uncore: &mut Uncore,
    state: &mut InterleaveState,
) {
    assert!(!engines.is_empty(), "a mix needs at least one program");
    loop {
        // Advance the core that is earliest in simulated time.
        let idx = engines
            .iter()
            .enumerate()
            .min_by_key(|(i, e)| SchedKey { time: e.cycles(), core: *i })
            .map(|(i, _)| i)
            .expect("at least one engine");
        let outcome = engines[idx].step(uncore, LlcMode::Real);
        if let Some(obs) = outcome.llc {
            state.tally_llc(idx, obs.depth.is_none());
        }
        if state.record_thresholds(engines, idx) {
            return;
        }
    }
}

/// A scheduled stop in a core's execution: its next shared-LLC access or
/// its next yield point, keyed for the event heap. `BinaryHeap` is a
/// max-heap, so the `Ord` impl is reversed to pop the earliest key first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Event {
    key: SchedKey,
    /// Whether a shared-LLC access is pending commit at this stop.
    llc: bool,
}

impl Event {
    fn new(stop: BurstStop, core: usize) -> Self {
        Self {
            key: SchedKey { time: stop.stamp(), core },
            llc: matches!(stop, BurstStop::Llc { .. }),
        }
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key)
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event-driven interleaver: each core runs private bursts
/// ([`CoreEngine::run_until_llc`]) and only its shared-LLC/memory-channel
/// events enter a binary heap keyed on `(arrival timestamp, core index)`.
/// O(log cores) per shared event; private items pay no global-ordering
/// cost.
///
/// Produces bit-identical results to [`reference_interleave`] (proven by
/// the differential oracle in `tests/differential.rs`): shared events
/// commit in the same `(pre-step clock, core index)` order that
/// smallest-clock-first stepping induces, and the run ends at the same
/// completion event, so every core executes the same shared-access
/// prefix. See DESIGN.md §9 for the equivalence argument.
///
/// # Panics
///
/// Panics if `engines` is empty.
pub fn event_interleave(
    engines: &mut [CoreEngine],
    uncore: &mut Uncore,
    warmup_insns: u64,
    trace_insns: u64,
) -> InterleaveOutcome {
    let mut state = InterleaveState::new(engines.len(), warmup_insns, trace_insns);
    let mut heap = BinaryHeap::with_capacity(engines.len());
    event_interleave_into(engines, uncore, &mut state, &mut heap);
    state.finish()
}

/// [`event_interleave`] over caller-owned (arena-pooled) state and heap;
/// the outcome is left in `state` instead of being collected. The heap
/// never holds more than one event per core, so a warm heap never grows.
fn event_interleave_into(
    engines: &mut [CoreEngine],
    uncore: &mut Uncore,
    state: &mut InterleaveState,
    heap: &mut BinaryHeap<Event>,
) {
    assert!(!engines.is_empty(), "a mix needs at least one program");
    // Yield granularity for cores with no shared events in flight; any
    // positive value produces identical results (yields have no shared
    // effects), this one bounds heap traffic to ~1 event per trace pass.
    let chunk = state.trace_insns.max(1);
    heap.clear();
    heap.reserve(engines.len());
    for idx in 0..engines.len() {
        let limit = state.next_limit(engines, idx, chunk);
        heap.push(Event::new(engines[idx].run_until_llc(limit), idx));
        state.heap_pushes += 1;
    }
    while let Some(ev) = heap.pop() {
        state.heap_pops += 1;
        let idx = ev.key.core;
        if ev.llc {
            let obs = engines[idx].commit_llc(uncore);
            state.tally_llc(idx, obs.depth.is_none());
        }
        if state.record_thresholds(engines, idx) {
            return;
        }
        let limit = state.next_limit(engines, idx, chunk);
        heap.push(Event::new(engines[idx].run_until_llc(limit), idx));
        state.heap_pushes += 1;
    }
    unreachable!("the heap always holds one event per core until completion");
}

/// Batch-compilation bookkeeping published as `sim.batch.*`.
#[derive(Debug, Clone, Copy, Default)]
struct BatchStats {
    /// Distinct specs resolved to compiled traces — freshly compiled or
    /// taken warm from a [`TraceCache`] alike, so the published `batch`
    /// event is byte-identical regardless of cache warmth (zero under
    /// reference-stream execution). Actual compile-vs-hit accounting
    /// lives in [`TraceCache::stats`].
    compiles: u64,
    /// Compiled blocks across those compilations.
    blocks: u64,
    /// Compiled ops (trace items) across those compilations.
    ops: u64,
    /// Engines that reused a compilation instead of running their own.
    reused: u64,
    /// Trace passes executed across all engines (all of them replayed
    /// from compiled blocks under compiled execution).
    passes: u64,
}

/// Resolves a spec to its compiled trace. Resolution order: the arena's
/// content-keyed memo (no allocation on a hit), then the shared
/// cross-run [`TraceCache`] (whose lookup allocates a `String` key),
/// then a fresh compile. The resolved trace is memoized, so the next
/// mix through the same arena skips both the cache lookup and the
/// compilation entirely. A [`CompiledTrace`] is a pure function of
/// `(spec, geometry)`, so memo warmth cannot affect results.
fn resolve_compiled(
    spec: &BenchmarkSpec,
    geometry: TraceGeometry,
    cache: Option<&TraceCache>,
    memo: &mut Vec<Arc<CompiledTrace>>,
) -> Arc<CompiledTrace> {
    if let Some(t) = memo.iter().find(|t| t.geometry() == geometry && *t.spec() == *spec) {
        return Arc::clone(t);
    }
    let t = match cache {
        Some(c) => c.get_or_compile(spec, geometry),
        None => Arc::new(CompiledTrace::compile(spec.clone(), geometry)),
    };
    memo.push(Arc::clone(&t));
    t
}

/// Builds (or, from a warm arena, re-initializes in place) one engine
/// per spec into `engines`. Under compiled execution every *distinct*
/// spec (by reference identity — mixes repeat specs by repeating the
/// same `&BenchmarkSpec`) is resolved once per mix and shared by all
/// cores running it; `dedup` replaces the old linear `std::ptr::eq`
/// scan with a capacity-hinted pointer-keyed map, keeping wide mixes
/// with many repeated specs O(1) per core.
#[allow(clippy::too_many_arguments)]
fn build_engines_into(
    specs: &[&BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
    core_factors: &[f64],
    execution: Execution,
    cache: Option<&TraceCache>,
    stats: &mut BatchStats,
    engines: &mut Vec<CoreEngine>,
    dedup: &mut PtrMap,
    memo: &mut Vec<Arc<CompiledTrace>>,
) {
    engines.truncate(specs.len());
    dedup.clear();
    dedup.reserve(specs.len());
    for (idx, (spec, &factor)) in specs.iter().zip(core_factors).enumerate() {
        match execution {
            Execution::ReferenceStream => match engines.get_mut(idx) {
                Some(e) => e.reinit_with_core_factor((*spec).clone(), machine, geometry, idx, factor),
                None => engines
                    .push(CoreEngine::with_core_factor((*spec).clone(), machine, geometry, idx, factor)),
            },
            Execution::Compiled => {
                let key = (*spec as *const BenchmarkSpec) as usize;
                let trace = match dedup.get(&key) {
                    Some(t) => {
                        stats.reused += 1;
                        Arc::clone(t)
                    }
                    None => {
                        let t = resolve_compiled(spec, geometry, cache, memo);
                        // Memo hits still count as `compiles`: the batch
                        // event counts *resolved* traces so observed
                        // streams stay identical regardless of warmth.
                        stats.compiles += 1;
                        stats.blocks += t.blocks().len() as u64;
                        stats.ops += t.ops();
                        dedup.insert(key, Arc::clone(&t));
                        t
                    }
                };
                match engines.get_mut(idx) {
                    Some(e) => e.reinit_with_compiled_trace(trace, machine, idx, factor),
                    None => engines.push(CoreEngine::with_compiled_trace(trace, machine, idx, factor)),
                }
            }
        }
    }
}

/// Overwrites `out.names` with the specs' names, reusing each existing
/// `String`'s buffer (a warm arena-path caller allocates nothing here
/// once the names have reached their steady-state lengths).
fn assign_names(out: &mut Vec<String>, specs: &[&BenchmarkSpec]) {
    out.truncate(specs.len());
    for (dst, spec) in out.iter_mut().zip(specs) {
        dst.clear();
        dst.push_str(spec.name());
    }
    for spec in &specs[out.len()..] {
        out.push(spec.name().to_string());
    }
}

#[allow(clippy::too_many_arguments)]
fn run_mix_into(
    specs: &[&BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
    warmup_passes: u32,
    uncore: &mut Uncore,
    core_factors: &[f64],
    scheduler: Scheduler,
    execution: Execution,
    trace_cache: Option<&TraceCache>,
    span: &Span,
    engines: &mut Vec<CoreEngine>,
    heap: &mut BinaryHeap<Event>,
    state: &mut InterleaveState,
    dedup: &mut PtrMap,
    memo: &mut Vec<Arc<CompiledTrace>>,
    out: &mut MixResult,
) {
    assert!(!specs.is_empty(), "a mix needs at least one program");
    let alloc_start = mppm_obs::alloc::snapshot();
    let mut batch = BatchStats::default();
    build_engines_into(
        specs,
        machine,
        geometry,
        core_factors,
        execution,
        trace_cache,
        &mut batch,
        engines,
        dedup,
        memo,
    );
    let engines = &mut engines[..specs.len()];
    let trace_insns = geometry.trace_insns();
    let warmup_insns = trace_insns * u64::from(warmup_passes);
    state.reset(engines.len(), warmup_insns, trace_insns);
    match scheduler {
        Scheduler::EventDriven => event_interleave_into(engines, uncore, state, heap),
        Scheduler::Reference => reference_interleave_into(engines, uncore, state),
    }

    assign_names(&mut out.names, specs);
    out.trace_insns = trace_insns;
    out.completion_cycles.clear();
    out.completion_cycles.extend(
        state
            .completion
            .iter()
            .zip(&state.measure_start)
            .map(|(end, start)| {
                end.expect("all programs completed")
                    - start.expect("warmup completed before the run ended")
            }),
    );
    out.cpi_mc.clear();
    out.cpi_mc.extend(out.completion_cycles.iter().map(|&c| c / trace_insns as f64));
    out.llc_accesses_per_core.clear();
    out.llc_accesses_per_core.extend_from_slice(&state.llc_accesses);
    out.llc_misses_per_core.clear();
    out.llc_misses_per_core.extend_from_slice(&state.llc_misses);
    out.llc_accesses = state.llc_accesses.iter().sum();
    out.llc_misses = state.llc_misses.iter().sum();
    // The scheduler-observed traffic and the caches' own counters are two
    // views of the same commits.
    debug_assert_eq!(
        (out.llc_accesses - out.llc_misses, out.llc_misses),
        uncore.llc_totals(),
        "per-core tallies must match the LLC's counters"
    );
    if span.is_enabled() {
        batch.passes = engines.iter().map(CoreEngine::trace_passes).sum();
        let alloc = mppm_obs::alloc::snapshot().since(alloc_start);
        publish_mix(span, uncore, state, out, warmup_passes, scheduler, execution, batch, alloc);
    }
}

/// Publishes one finished mix to an enabled span: configuration, the
/// per-core outcome, and the simulator's native counters (LLC kernel
/// counters, scheduler heap traffic). Called once per simulation — the
/// interleaving loops themselves are never instrumented, which is what
/// keeps the disabled-observer overhead unmeasurable.
#[allow(clippy::too_many_arguments)]
fn publish_mix(
    span: &Span,
    uncore: &Uncore,
    outcome: &InterleaveState,
    result: &MixResult,
    warmup_passes: u32,
    scheduler: Scheduler,
    execution: Execution,
    batch: BatchStats,
    alloc: mppm_obs::alloc::AllocSnapshot,
) {
    let sched_name = match scheduler {
        Scheduler::EventDriven => "event-driven",
        Scheduler::Reference => "reference",
    };
    let exec_name = match execution {
        Execution::Compiled => "compiled",
        Execution::ReferenceStream => "reference-stream",
    };
    span.event(
        "mix-config",
        &[
            ("cores", Value::from(result.names.len())),
            ("trace_insns", Value::from(result.trace_insns)),
            ("warmup_passes", Value::from(warmup_passes)),
            ("scheduler", Value::from(sched_name)),
            ("execution", Value::from(exec_name)),
            ("partitioned", Value::from(uncore.is_partitioned())),
        ],
    );
    for (core, name) in result.names.iter().enumerate() {
        span.event(
            "core",
            &[
                ("core", Value::from(core)),
                ("program", Value::from(name.as_str())),
                ("cpi", Value::from(result.cpi_mc[core])),
                ("llc_accesses", Value::from(result.llc_accesses_per_core[core])),
                ("llc_misses", Value::from(result.llc_misses_per_core[core])),
            ],
        );
    }
    let (hits, misses) = uncore.llc_totals();
    let evictions = uncore.llc_evictions();
    span.event(
        "llc",
        &[
            ("hits", Value::from(hits)),
            ("misses", Value::from(misses)),
            ("evictions", Value::from(evictions)),
        ],
    );
    span.event(
        "scheduler",
        &[
            ("heap_pushes", Value::from(outcome.heap_pushes)),
            ("heap_pops", Value::from(outcome.heap_pops)),
            ("llc_commits", Value::from(result.llc_accesses)),
        ],
    );
    span.event(
        "batch",
        &[
            ("execution", Value::from(exec_name)),
            ("compiles", Value::from(batch.compiles)),
            ("blocks", Value::from(batch.blocks)),
            ("ops", Value::from(batch.ops)),
            ("reused", Value::from(batch.reused)),
            ("passes", Value::from(batch.passes)),
        ],
    );
    span.counter("sim.mixes").incr();
    span.counter("sim.llc.hits").add(hits);
    span.counter("sim.llc.misses").add(misses);
    span.counter("sim.llc.evictions").add(evictions);
    span.counter("sim.llc.commits").add(result.llc_accesses);
    span.counter("sim.sched.heap_pushes").add(outcome.heap_pushes);
    span.counter("sim.sched.heap_pops").add(outcome.heap_pops);
    span.counter("sim.batch.compiles").add(batch.compiles);
    span.counter("sim.batch.blocks").add(batch.blocks);
    span.counter("sim.batch.ops").add(batch.ops);
    span.counter("sim.batch.reused").add(batch.reused);
    span.counter("sim.batch.passes").add(batch.passes);
    // Heap allocations observed during this mix — zero unless a counting
    // allocator feeds `mppm_obs::alloc` (test/bench binaries only), and
    // zero at steady state on a warm arena even then. Counters only:
    // adding an *event* would perturb the pinned event-stream tests.
    span.counter("sim.alloc.count").add(alloc.allocs);
    span.counter("sim.alloc.bytes").add(alloc.bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile_single_core;
    use mppm_trace::suite;

    fn geometry() -> TraceGeometry {
        TraceGeometry::new(20_000, 10)
    }

    #[test]
    #[should_panic(expected = "at least one program")]
    fn empty_mix_panics() {
        MixSim::new(&[], &MachineConfig::baseline(), geometry()).run();
    }

    #[test]
    fn solo_mix_equals_isolated_profile() {
        // A one-program "mix" is isolated execution: its warm multi-core
        // CPI must equal the warm single-core profile CPI exactly.
        let m = MachineConfig::baseline();
        let g = geometry();
        let spec = suite::benchmark("soplex").unwrap();
        let solo = MixSim::new(&[spec], &m, g).run();
        let profile = profile_single_core(spec, &m, g);
        assert!(
            (solo.cpi_mc[0] - profile.cpi_sc()).abs() < 1e-9,
            "solo mix {} vs isolated {}",
            solo.cpi_mc[0],
            profile.cpi_sc()
        );
    }

    #[test]
    fn sharing_never_speeds_programs_up() {
        let m = MachineConfig::baseline();
        let g = geometry();
        let names = ["gamess", "soplex", "lbm", "hmmer"];
        let specs: Vec<_> = names.iter().map(|n| suite::benchmark(n).unwrap()).collect();
        let mix = MixSim::new(&specs, &m, g).run();
        for (i, name) in names.iter().enumerate() {
            let iso = profile_single_core(specs[i], &m, g);
            assert!(
                mix.cpi_mc[i] >= iso.cpi_sc() - 1e-6,
                "{name}: multi-core CPI {} below isolated {}",
                mix.cpi_mc[i],
                iso.cpi_sc()
            );
        }
    }

    #[test]
    fn two_gamess_thrash_each_other() {
        // The paper's headline stress case: two programs that each fit the
        // LLC alone but not together. Needs a window long enough for the
        // 6500-block working set to see reuse.
        let m = MachineConfig::baseline();
        let g = TraceGeometry::new(100_000, 10);
        let gamess = suite::benchmark("gamess").unwrap();
        let solo = profile_single_core(gamess, &m, g);
        let mix = MixSim::new(&[gamess, gamess], &m, g).run();
        let slowdown = mix.cpi_mc[0] / solo.cpi_sc();
        assert!(slowdown > 1.3, "two gamess copies should conflict: slowdown {slowdown}");
    }

    #[test]
    fn compute_bound_pair_is_unaffected() {
        let m = MachineConfig::baseline();
        let g = geometry();
        let povray = suite::benchmark("povray").unwrap();
        let hmmer = suite::benchmark("hmmer").unwrap();
        let solo_p = profile_single_core(povray, &m, g);
        let mix = MixSim::new(&[povray, hmmer], &m, g).run();
        let slowdown = mix.cpi_mc[0] / solo_p.cpi_sc();
        assert!(slowdown < 1.05, "compute pair slowdown {slowdown}");
    }

    #[test]
    fn metrics_against_profiles() {
        let m = MachineConfig::baseline();
        let g = geometry();
        let names = ["gamess", "lbm"];
        let specs: Vec<_> = names.iter().map(|n| suite::benchmark(n).unwrap()).collect();
        let cpi_sc: Vec<f64> =
            specs.iter().map(|s| profile_single_core(s, &m, g).cpi_sc()).collect();
        let mix = MixSim::new(&specs, &m, g).run();
        let stp = mix.stp(&cpi_sc);
        let antt = mix.antt(&cpi_sc);
        assert!(stp > 0.5 && stp <= 2.0 + 1e-9, "stp {stp}");
        assert!(antt >= 1.0 - 1e-9, "antt {antt}");
    }

    #[test]
    fn deterministic_across_runs() {
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let specs: Vec<_> =
            ["gcc", "milc"].iter().map(|n| suite::benchmark(n).unwrap()).collect();
        let a = MixSim::new(&specs, &m, g).run();
        let b = MixSim::new(&specs, &m, g).run();
        assert_eq!(a, b);
    }

    #[test]
    fn bandwidth_limit_creates_contention_between_streamers() {
        // lbm and libquantum have disjoint footprints and already miss the
        // LLC when alone, so with unlimited bandwidth they barely
        // interact; a finite shared channel makes them queue behind each
        // other (§8 extension). The trace must be long enough that the
        // streams sweep far past the LLC within one pass.
        let g = TraceGeometry::new(200_000, 10);
        let specs: Vec<_> =
            ["lbm", "libquantum"].iter().map(|n| suite::benchmark(n).unwrap()).collect();

        let unlimited = MachineConfig::baseline();
        let solo_unl: Vec<f64> =
            specs.iter().map(|s| profile_single_core(s, &unlimited, g).cpi_sc()).collect();
        let mix_unl = MixSim::new(&specs, &unlimited, g).run();
        let slow_unl = mix_unl.cpi_mc[0] / solo_unl[0];
        assert!(slow_unl < 1.05, "unlimited bandwidth: slowdown {slow_unl}");

        // One access per 25 cycles: enough for either stream alone, not
        // for both.
        let limited = MachineConfig::baseline().with_mem_bandwidth(0.04);
        let solo_lim: Vec<f64> =
            specs.iter().map(|s| profile_single_core(s, &limited, g).cpi_sc()).collect();
        let mix_lim = MixSim::new(&specs, &limited, g).run();
        let slow_lim = mix_lim.cpi_mc[0] / solo_lim[0];
        assert!(
            slow_lim > slow_unl + 0.05,
            "bandwidth sharing must add slowdown: {slow_lim} vs {slow_unl}"
        );
    }

    #[test]
    fn partitioning_protects_the_victim() {
        // gamess against a streamer: on a unified LLC the streamer evicts
        // it; with 7 ways reserved it keeps (7/8 of) its working set.
        let m = MachineConfig::baseline();
        let g = TraceGeometry::new(100_000, 10);
        let gamess = suite::benchmark("gamess").unwrap();
        let lbm = suite::benchmark("lbm").unwrap();
        let solo = profile_single_core(gamess, &m, g).cpi_sc();
        let unified = MixSim::new(&[gamess, lbm], &m, g).run();
        let partitioned = MixSim::new(&[gamess, lbm], &m, g).partitioned(&[7, 1]).run();
        let slow_unified = unified.cpi_mc[0] / solo;
        let slow_part = partitioned.cpi_mc[0] / solo;
        assert!(
            slow_part < slow_unified - 0.2,
            "partitioning must protect gamess: {slow_part} vs {slow_unified}"
        );
    }

    #[test]
    fn partitioned_slices_isolate_traffic() {
        // Identical programs on equal slices behave identically.
        let m = MachineConfig::baseline();
        let g = geometry();
        let soplex = suite::benchmark("soplex").unwrap();
        let mix = MixSim::new(&[soplex, soplex], &m, g).partitioned(&[4, 4]).run();
        assert!(
            (mix.cpi_mc[0] - mix.cpi_mc[1]).abs() < 1e-9,
            "equal slices, equal CPI: {:?}",
            mix.cpi_mc
        );
    }

    #[test]
    #[should_panic(expected = "sum to the LLC associativity")]
    fn partition_ways_must_cover_cache() {
        let m = MachineConfig::baseline();
        let soplex = suite::benchmark("soplex").unwrap();
        MixSim::new(&[soplex, soplex], &m, geometry()).partitioned(&[4, 3]).run();
    }

    #[test]
    fn heterogeneous_little_core_runs_slower() {
        let m = MachineConfig::baseline();
        let g = geometry();
        let hmmer = suite::benchmark("hmmer").unwrap();
        // Same program on a big and a little core: the little copy's CPI
        // must be higher, but by less than 2x (memory time is unscaled).
        let mix = MixSim::new(&[hmmer, hmmer], &m, g).core_factors(&[1.0, 2.0]).run();
        let ratio = mix.cpi_mc[1] / mix.cpi_mc[0];
        assert!(ratio > 1.5, "little core must be slower: ratio {ratio}");
        assert!(ratio < 2.0 + 1e-9, "memory time does not scale: ratio {ratio}");
    }

    #[test]
    fn heterogeneous_matches_scaled_profile_when_solo() {
        // Simulating a program alone on a 1.5x-scaled core must match the
        // profile-scaling derivation exactly (same machinery on both
        // sides of the §8 heterogeneity extension).
        let m = MachineConfig::baseline();
        let g = geometry();
        let spec = suite::benchmark("gobmk").unwrap();
        let scaled_profile = profile_single_core(spec, &m, g).scaled_core(1.5);
        let solo = MixSim::new(&[spec], &m, g).core_factors(&[1.5]).run();
        assert!(
            (solo.cpi_mc[0] - scaled_profile.cpi_sc()).abs() < 1e-9,
            "simulated {} vs derived {}",
            solo.cpi_mc[0],
            scaled_profile.cpi_sc()
        );
    }

    #[test]
    fn llc_traffic_is_accounted() {
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let specs: Vec<_> =
            ["lbm", "mcf"].iter().map(|n| suite::benchmark(n).unwrap()).collect();
        let mix = MixSim::new(&specs, &m, g).run();
        assert!(mix.llc_accesses > 0);
        assert!(mix.llc_misses <= mix.llc_accesses);
        assert!(mix.llc_misses > 0, "streaming mixes must miss");
        // The per-core breakdown must tile the totals exactly, and every
        // core of this all-memory-bound mix must contribute traffic.
        assert_eq!(mix.llc_accesses_per_core.len(), specs.len());
        assert_eq!(mix.llc_misses_per_core.len(), specs.len());
        assert_eq!(mix.llc_accesses_per_core.iter().sum::<u64>(), mix.llc_accesses);
        assert_eq!(mix.llc_misses_per_core.iter().sum::<u64>(), mix.llc_misses);
        for core in 0..specs.len() {
            assert!(mix.llc_accesses_per_core[core] > 0, "core {core} never reached the LLC");
            assert!(mix.llc_misses_per_core[core] <= mix.llc_accesses_per_core[core]);
        }
    }

    #[test]
    fn timestamp_ties_dispatch_by_core_index() {
        // Four identical programs generate identical local timelines, so
        // every shared event arrives as a 4-way timestamp tie. The core
        // index tie-break must keep the schedulers deterministic and, on
        // equal partitioned slices, keep all four copies bit-identical.
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let lbm = suite::benchmark("lbm").unwrap();
        let specs = [lbm, lbm, lbm, lbm];
        let event = MixSim::new(&specs, &m, g).partitioned(&[2, 2, 2, 2]).run();
        let reference = MixSim::new(&specs, &m, g)
            .partitioned(&[2, 2, 2, 2])
            .scheduler(Scheduler::Reference)
            .run();
        assert_eq!(event, reference, "tie-breaking must match the reference interleaver");
        for core in 1..specs.len() {
            assert_eq!(
                event.cpi_mc[0].to_bits(),
                event.cpi_mc[core].to_bits(),
                "equal slices, bit-equal CPI: {:?}",
                event.cpi_mc
            );
        }
    }

    #[derive(Clone, Default)]
    struct CaptureSink(std::sync::Arc<std::sync::Mutex<Vec<mppm_obs::Event>>>);

    impl mppm_obs::Sink for CaptureSink {
        fn record(&self, event: mppm_obs::Event) {
            self.0.lock().unwrap().push(event);
        }
    }

    #[test]
    fn observed_mix_publishes_events_and_counters_without_changing_results() {
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let gamess = suite::benchmark("gamess").unwrap();
        let lbm = suite::benchmark("lbm").unwrap();
        let silent = MixSim::new(&[gamess, lbm], &m, g).run();

        let capture = CaptureSink::default();
        let observer = mppm_obs::Observer::new(Box::new(capture.clone()));
        let observed = {
            let root = observer.root("mix-0000");
            MixSim::new(&[gamess, lbm], &m, g).observer(&root).run()
        };
        assert_eq!(silent, observed, "observation must not perturb the simulation");

        let events = capture.0.lock().unwrap().clone();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "span-start",
                "mix-config",
                "core",
                "core",
                "llc",
                "scheduler",
                "batch",
                "span-end"
            ]
        );
        let sched = &events[5];
        let pushes = sched.fields.iter().find(|(k, _)| *k == "heap_pushes").unwrap();
        assert!(
            matches!(pushes.1, mppm_obs::Value::U64(n) if n > 0),
            "event-driven run must report heap traffic: {pushes:?}"
        );
        let snapshot = observer.counter_snapshot();
        let get = |name: &str| {
            snapshot.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
        };
        assert_eq!(get("sim.mixes"), 1);
        assert_eq!(get("sim.llc.commits"), observed.llc_accesses);
        // Warmup passes also touch the LLC, so kernel hit/miss totals
        // exceed the measured-window commits.
        assert!(get("sim.llc.hits") + get("sim.llc.misses") >= observed.llc_accesses);
        assert!(get("sim.sched.heap_pops") > 0);
        // Two distinct specs under the default compiled execution: two
        // compilations, no reuse, and at least warmup+measurement passes
        // replayed per engine.
        assert_eq!(get("sim.batch.compiles"), 2);
        assert_eq!(get("sim.batch.reused"), 0);
        assert!(get("sim.batch.blocks") >= 2);
        assert!(get("sim.batch.ops") > 0);
        assert!(get("sim.batch.passes") >= 2, "passes {}", get("sim.batch.passes"));
    }

    #[test]
    fn repeated_specs_share_one_compilation() {
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let lbm = suite::benchmark("lbm").unwrap();
        let capture = CaptureSink::default();
        let observer = mppm_obs::Observer::new(Box::new(capture.clone()));
        {
            let root = observer.root("mix-0001");
            MixSim::new(&[lbm, lbm, lbm], &m, g).observer(&root).run();
        }
        let snapshot = observer.counter_snapshot();
        let get = |name: &str| {
            snapshot.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
        };
        assert_eq!(get("sim.batch.compiles"), 1, "one spec, one compilation");
        assert_eq!(get("sim.batch.reused"), 2, "two cores reuse the shared trace");
    }

    #[test]
    fn compiled_execution_matches_reference_stream() {
        // The quick in-crate check (the full axis sweep lives in the
        // proptest oracle): both schedulers, heterogeneous cores, and a
        // partitioned variant must be bit-identical across executions.
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let specs: Vec<_> =
            ["gamess", "lbm", "mcf"].iter().map(|n| suite::benchmark(n).unwrap()).collect();
        for scheduler in [Scheduler::EventDriven, Scheduler::Reference] {
            let run = |execution| {
                MixSim::new(&specs, &m, g)
                    .core_factors(&[1.0, 2.0, 1.25])
                    .scheduler(scheduler)
                    .execution(execution)
                    .run()
            };
            assert_eq!(
                run(Execution::Compiled),
                run(Execution::ReferenceStream),
                "{scheduler:?}"
            );
        }
        let part = |execution| {
            MixSim::new(&specs[..2], &m, g)
                .partitioned(&[6, 2])
                .execution(execution)
                .run()
        };
        assert_eq!(part(Execution::Compiled), part(Execution::ReferenceStream));
    }

    #[test]
    fn deprecated_wrappers_stay_bit_exact_against_the_builder() {
        // The five legacy entry points are contractually thin: each must
        // produce the identical MixResult as its MixSim spelling.
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let gamess = suite::benchmark("gamess").unwrap();
        let lbm = suite::benchmark("lbm").unwrap();
        let specs = [gamess, lbm];
        #[allow(deprecated)]
        {
            assert_eq!(simulate_mix(&specs, &m, g), MixSim::new(&specs, &m, g).run());
            assert_eq!(
                simulate_mix_with(&specs, &m, g, 0),
                MixSim::new(&specs, &m, g).warmup_passes(0).run()
            );
            assert_eq!(
                simulate_mix_partitioned(&specs, &m, g, &[6, 2]),
                MixSim::new(&specs, &m, g).partitioned(&[6, 2]).run()
            );
            assert_eq!(
                simulate_mix_heterogeneous(&specs, &m, g, &[1.0, 1.5]),
                MixSim::new(&specs, &m, g).core_factors(&[1.0, 1.5]).run()
            );
            let opts = MixOptions {
                warmup_passes: 2,
                scheduler: Scheduler::Reference,
                ..MixOptions::default()
            };
            assert_eq!(
                simulate_mix_opts(&specs, &m, g, &opts),
                MixSim::new(&specs, &m, g)
                    .warmup_passes(2)
                    .scheduler(Scheduler::Reference)
                    .run()
            );
        }
    }

    #[test]
    fn trace_cache_is_result_invariant_and_counts_hits() {
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let gamess = suite::benchmark("gamess").unwrap();
        let lbm = suite::benchmark("lbm").unwrap();
        let specs = [gamess, lbm, gamess];

        let cold = MixSim::new(&specs, &m, g).run();
        let cache = TraceCache::new();
        let first = MixSim::new(&specs, &m, g).trace_cache(&cache).run();
        let second = MixSim::new(&specs, &m, g).trace_cache(&cache).run();
        assert_eq!(cold, first, "cold cache changes nothing");
        assert_eq!(first, second, "warm cache changes nothing");

        // Two distinct specs compiled once each; the repeated gamess core
        // reuses within the run (never reaching the cache), and the second
        // run hits for both.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (2, 2), "(hits, compiles)");
    }

    #[test]
    fn trace_cache_keys_by_geometry() {
        let m = MachineConfig::baseline();
        let gamess = suite::benchmark("gamess").unwrap();
        let specs = [gamess];
        let cache = TraceCache::new();
        let tiny = MixSim::new(&specs, &m, TraceGeometry::tiny()).trace_cache(&cache).run();
        let other = MixSim::new(&specs, &m, TraceGeometry::new(2_000, 4))
            .trace_cache(&cache)
            .run();
        assert_eq!(cache.len(), 2, "different geometries get different slots");
        assert_ne!(tiny.trace_insns, other.trace_insns);
    }

    #[test]
    fn trace_cache_keeps_observed_batch_events_identical() {
        // The `batch` span event must not leak cache warmth: a warm run
        // and a cacheless run publish byte-identical event streams.
        use mppm_obs::{Event, Observer, Sink};

        #[derive(Default)]
        struct Capture(Arc<std::sync::Mutex<Vec<String>>>);
        impl Sink for Capture {
            fn record(&self, event: Event) {
                if event.name == "batch" {
                    self.0.lock().unwrap().push(event.to_jsonl(0));
                }
            }
        }

        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let gamess = suite::benchmark("gamess").unwrap();
        let specs = [gamess, gamess];

        let capture = |cache: Option<&TraceCache>| -> Vec<String> {
            let lines = Arc::new(std::sync::Mutex::new(Vec::new()));
            let observer = Observer::new(Box::new(Capture(Arc::clone(&lines))));
            {
                let root = observer.root("mix");
                let mut sim = MixSim::new(&specs, &m, g).observer(&root);
                if let Some(c) = cache {
                    sim = sim.trace_cache(c);
                }
                sim.run();
            }
            observer.finish().unwrap();
            let captured = lines.lock().unwrap().clone();
            captured
        };

        let cache = TraceCache::new();
        MixSim::new(&specs, &m, g).trace_cache(&cache).run();
        let cacheless = capture(None);
        let warm = capture(Some(&cache));
        assert!(!cacheless.is_empty());
        assert_eq!(cacheless, warm, "batch events must not depend on cache warmth");
    }

    #[test]
    fn many_repeated_specs_dedup_via_pointer_map() {
        // Satellite check for the pointer-keyed dedup map: a wide mix
        // repeating two specs eight times each must compile each spec
        // once and reuse it on every other core.
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let gamess = suite::benchmark("gamess").unwrap();
        let lbm = suite::benchmark("lbm").unwrap();
        let mut specs = Vec::new();
        for _ in 0..8 {
            specs.push(gamess);
            specs.push(lbm);
        }
        let capture = CaptureSink::default();
        let observer = mppm_obs::Observer::new(Box::new(capture.clone()));
        let mix = {
            let root = observer.root("mix-wide");
            MixSim::new(&specs, &m, g).observer(&root).run()
        };
        assert_eq!(mix.names.len(), 16);
        let snapshot = observer.counter_snapshot();
        let get = |name: &str| {
            snapshot.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
        };
        assert_eq!(get("sim.batch.compiles"), 2, "two distinct specs");
        assert_eq!(get("sim.batch.reused"), 14, "fourteen cores reuse");
        // Identical programs at even/odd positions see symmetric
        // schedules only under partitioning; here just check the dedup
        // did not cross specs: all gamess cores ran gamess.
        for (i, name) in mix.names.iter().enumerate() {
            assert_eq!(name, if i % 2 == 0 { "gamess" } else { "lbm" });
        }
    }

    #[test]
    fn arena_runs_are_bit_exact_with_fresh_runs() {
        // One arena threaded through a shape-shifting sequence of mixes
        // (different core counts, partitioning, schedulers, factors)
        // must reproduce every fresh-allocation result bit-for-bit.
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let gamess = suite::benchmark("gamess").unwrap();
        let lbm = suite::benchmark("lbm").unwrap();
        let mcf = suite::benchmark("mcf").unwrap();
        let mut arena = SimArena::new();
        let configs: Vec<MixSimConfig> = vec![
            MixSimConfig { specs: vec![gamess, lbm], ..Default::default() },
            MixSimConfig { specs: vec![gamess, lbm, mcf], ..Default::default() },
            MixSimConfig { specs: vec![gamess, lbm], ways: Some(vec![6, 2]), ..Default::default() },
            MixSimConfig { specs: vec![lbm], ..Default::default() },
            MixSimConfig {
                specs: vec![mcf, mcf],
                factors: Some(vec![1.0, 2.0]),
                scheduler: Scheduler::Reference,
                ..Default::default()
            },
            MixSimConfig { specs: vec![gamess, lbm], ..Default::default() },
        ];
        for (i, cfg) in configs.iter().enumerate() {
            let fresh = cfg.build(&m, g).run();
            let pooled = cfg.build(&m, g).arena(&mut arena).run();
            assert_eq!(fresh, pooled, "config {i} diverged through the arena");
        }
    }

    /// Owned mix description for arena tests (MixSim itself borrows).
    #[derive(Default)]
    struct MixSimConfig {
        specs: Vec<&'static BenchmarkSpec>,
        ways: Option<Vec<u32>>,
        factors: Option<Vec<f64>>,
        scheduler: Scheduler,
    }

    impl MixSimConfig {
        fn build<'a>(&'a self, m: &'a MachineConfig, g: TraceGeometry) -> MixSim<'a> {
            let mut sim = MixSim::new(&self.specs, m, g).scheduler(self.scheduler);
            if let Some(w) = &self.ways {
                sim = sim.partitioned(w);
            }
            if let Some(f) = &self.factors {
                sim = sim.core_factors(f);
            }
            sim
        }
    }

    #[test]
    fn arena_memo_bypasses_the_shared_trace_cache() {
        // A warm arena resolves traces from its own memo, so repeat runs
        // leave the shared cache's hit/compile totals untouched — and
        // stay bit-exact while doing so.
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let gamess = suite::benchmark("gamess").unwrap();
        let lbm = suite::benchmark("lbm").unwrap();
        let specs = [gamess, lbm];
        let cache = TraceCache::new();
        let mut arena = SimArena::new();
        let first = MixSim::new(&specs, &m, g).trace_cache(&cache).arena(&mut arena).run();
        assert_eq!(cache.stats(), (0, 2), "cold arena compiles through the cache");
        assert_eq!(arena.memo_len(), 2);
        let second = MixSim::new(&specs, &m, g).trace_cache(&cache).arena(&mut arena).run();
        assert_eq!(first, second);
        assert_eq!(cache.stats(), (0, 2), "warm arena never re-enters the cache");
        assert_eq!(arena.memo_len(), 2, "memo holds one entry per (spec, geometry)");
    }

    #[test]
    fn cleared_arena_recompiles() {
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let lbm = suite::benchmark("lbm").unwrap();
        let mut arena = SimArena::new();
        let warm = MixSim::new(&[lbm], &m, g).arena(&mut arena).run();
        assert_eq!(arena.memo_len(), 1);
        arena.clear();
        assert_eq!(arena.memo_len(), 0);
        let cold = MixSim::new(&[lbm], &m, g).arena(&mut arena).run();
        assert_eq!(warm, cold);
    }
}
