//! Detailed multi-core simulation of a multi-program workload.

use mppm_trace::{BenchmarkSpec, TraceGeometry};
use serde::{Deserialize, Serialize};

use crate::{CoreEngine, LlcMode, MachineConfig, Uncore};

/// Measured outcome of one multi-program workload on the detailed
/// simulator.
///
/// Serializable so experiment harnesses can pin full results as golden
/// snapshots (floats survive the JSON round trip bit-exactly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixResult {
    /// Benchmark name per core.
    pub names: Vec<String>,
    /// Measured multi-core CPI per program, over its measurement trace
    /// (the first full trace after warmup).
    pub cpi_mc: Vec<f64>,
    /// Cycles each program's measurement window took (first-trace
    /// completion minus its warmup end).
    pub completion_cycles: Vec<f64>,
    /// Instructions in one trace (the measurement window per program).
    pub trace_insns: u64,
    /// Shared-LLC accesses observed during the whole run.
    pub llc_accesses: u64,
    /// Shared-LLC misses observed during the whole run.
    pub llc_misses: u64,
}

impl MixResult {
    /// System throughput against the supplied isolated CPIs.
    ///
    /// # Panics
    ///
    /// Panics if `cpi_sc` has the wrong length (see
    /// [`mppm::metrics::stp`]).
    pub fn stp(&self, cpi_sc: &[f64]) -> f64 {
        mppm::metrics::stp(cpi_sc, &self.cpi_mc)
    }

    /// Average normalized turnaround time against the supplied isolated
    /// CPIs.
    ///
    /// # Panics
    ///
    /// Panics if `cpi_sc` has the wrong length.
    pub fn antt(&self, cpi_sc: &[f64]) -> f64 {
        mppm::metrics::antt(cpi_sc, &self.cpi_mc)
    }
}

/// Simulates `specs` co-running on one core each, sharing the machine's
/// LLC, with one warmup trace pass per program (see [`simulate_mix_with`]).
///
/// # Panics
///
/// Panics if `specs` is empty.
pub fn simulate_mix(
    specs: &[&BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
) -> MixResult {
    simulate_mix_with(specs, machine, geometry, 1)
}

/// Simulates `specs` co-running on one core each, sharing the machine's
/// LLC.
///
/// Cores advance in local-time order (the core with the smallest local
/// clock steps next), so shared-LLC accesses from different cores
/// interleave in approximate timestamp order. Every program keeps
/// re-iterating its trace until *all* programs have completed their
/// measurement pass — the re-iteration methodology of Tuck & Tullsen /
/// FAME — so contention stays live throughout.
///
/// Each program first executes `warmup_passes` full traces (warming the
/// caches, mirroring [`crate::profile_single_core`]); its multi-core CPI
/// is then measured over its next full trace.
///
/// # Panics
///
/// Panics if `specs` is empty.
pub fn simulate_mix_with(
    specs: &[&BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
    warmup_passes: u32,
) -> MixResult {
    let uncore = Uncore::new(machine);
    run_mix(specs, machine, geometry, warmup_passes, uncore)
}

/// Simulates `specs` on a machine whose LLC is *way-partitioned*: core
/// `i` owns `ways[i]` ways of every set (paper §2.3's partitioning
/// discussion). One warmup pass, as in [`simulate_mix`].
///
/// # Panics
///
/// Panics if `specs` is empty, `ways.len() != specs.len()`, or the ways
/// do not sum to the LLC associativity.
pub fn simulate_mix_partitioned(
    specs: &[&BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
    ways: &[u32],
) -> MixResult {
    assert_eq!(ways.len(), specs.len(), "one way count per program");
    let uncore = Uncore::partitioned(machine, ways);
    run_mix(specs, machine, geometry, 1, uncore)
}

/// Simulates `specs` on a *heterogeneous* multi-core (§8 extension):
/// core `i`'s compute throughput is scaled by `1/core_factors[i]` (1.0 =
/// the baseline big core, 2.0 = a half-throughput little core). The LLC
/// stays unified and shared; one warmup pass as in [`simulate_mix`].
///
/// # Panics
///
/// Panics if `specs` is empty or `core_factors.len() != specs.len()`.
pub fn simulate_mix_heterogeneous(
    specs: &[&BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
    core_factors: &[f64],
) -> MixResult {
    assert_eq!(core_factors.len(), specs.len(), "one core factor per program");
    let uncore = Uncore::new(machine);
    run_mix_with_factors(specs, machine, geometry, 1, uncore, core_factors)
}

fn run_mix(
    specs: &[&BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
    warmup_passes: u32,
    uncore: Uncore,
) -> MixResult {
    let factors = vec![1.0; specs.len()];
    run_mix_with_factors(specs, machine, geometry, warmup_passes, uncore, &factors)
}

fn run_mix_with_factors(
    specs: &[&BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
    warmup_passes: u32,
    mut uncore: Uncore,
    core_factors: &[f64],
) -> MixResult {
    assert!(!specs.is_empty(), "a mix needs at least one program");
    let mut engines: Vec<CoreEngine> = specs
        .iter()
        .zip(core_factors)
        .enumerate()
        .map(|(idx, (spec, &factor))| {
            CoreEngine::with_core_factor((*spec).clone(), machine, geometry, idx, factor)
        })
        .collect();
    let trace_insns = geometry.trace_insns();
    let warmup_insns = trace_insns * u64::from(warmup_passes);
    let mut measure_start: Vec<Option<f64>> = vec![None; engines.len()];
    let mut completion: Vec<Option<f64>> = vec![None; engines.len()];
    let mut remaining = engines.len();

    // Cycle 0 is the measurement start when there is no warmup.
    if warmup_passes == 0 {
        measure_start = vec![Some(0.0); engines.len()];
    }

    while remaining > 0 {
        // Advance the core that is earliest in simulated time.
        let idx = engines
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.cycles().partial_cmp(&b.cycles()).expect("clocks are finite")
            })
            .map(|(i, _)| i)
            .expect("at least one engine");
        engines[idx].step(&mut uncore, LlcMode::Real);
        if measure_start[idx].is_none() && engines[idx].insns() >= warmup_insns {
            measure_start[idx] = Some(engines[idx].cycles());
        }
        if completion[idx].is_none() && engines[idx].insns() >= warmup_insns + trace_insns {
            completion[idx] = Some(engines[idx].cycles());
            remaining -= 1;
        }
    }

    let completion_cycles: Vec<f64> = completion
        .into_iter()
        .zip(&measure_start)
        .map(|(end, start)| {
            end.expect("all programs completed") - start.expect("warmup completed first")
        })
        .collect();
    let (llc_hits, llc_misses) = uncore.llc_totals();
    MixResult {
        names: specs.iter().map(|s| s.name().to_string()).collect(),
        cpi_mc: completion_cycles.iter().map(|&c| c / trace_insns as f64).collect(),
        completion_cycles,
        trace_insns,
        llc_accesses: llc_hits + llc_misses,
        llc_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile_single_core;
    use mppm_trace::suite;

    fn geometry() -> TraceGeometry {
        TraceGeometry::new(20_000, 10)
    }

    #[test]
    #[should_panic(expected = "at least one program")]
    fn empty_mix_panics() {
        simulate_mix(&[], &MachineConfig::baseline(), geometry());
    }

    #[test]
    fn solo_mix_equals_isolated_profile() {
        // A one-program "mix" is isolated execution: its warm multi-core
        // CPI must equal the warm single-core profile CPI exactly.
        let m = MachineConfig::baseline();
        let g = geometry();
        let spec = suite::benchmark("soplex").unwrap();
        let solo = simulate_mix(&[spec], &m, g);
        let profile = profile_single_core(spec, &m, g);
        assert!(
            (solo.cpi_mc[0] - profile.cpi_sc()).abs() < 1e-9,
            "solo mix {} vs isolated {}",
            solo.cpi_mc[0],
            profile.cpi_sc()
        );
    }

    #[test]
    fn sharing_never_speeds_programs_up() {
        let m = MachineConfig::baseline();
        let g = geometry();
        let names = ["gamess", "soplex", "lbm", "hmmer"];
        let specs: Vec<_> = names.iter().map(|n| suite::benchmark(n).unwrap()).collect();
        let mix = simulate_mix(&specs, &m, g);
        for (i, name) in names.iter().enumerate() {
            let iso = profile_single_core(specs[i], &m, g);
            assert!(
                mix.cpi_mc[i] >= iso.cpi_sc() - 1e-6,
                "{name}: multi-core CPI {} below isolated {}",
                mix.cpi_mc[i],
                iso.cpi_sc()
            );
        }
    }

    #[test]
    fn two_gamess_thrash_each_other() {
        // The paper's headline stress case: two programs that each fit the
        // LLC alone but not together. Needs a window long enough for the
        // 6500-block working set to see reuse.
        let m = MachineConfig::baseline();
        let g = TraceGeometry::new(100_000, 10);
        let gamess = suite::benchmark("gamess").unwrap();
        let solo = profile_single_core(gamess, &m, g);
        let mix = simulate_mix(&[gamess, gamess], &m, g);
        let slowdown = mix.cpi_mc[0] / solo.cpi_sc();
        assert!(slowdown > 1.3, "two gamess copies should conflict: slowdown {slowdown}");
    }

    #[test]
    fn compute_bound_pair_is_unaffected() {
        let m = MachineConfig::baseline();
        let g = geometry();
        let povray = suite::benchmark("povray").unwrap();
        let hmmer = suite::benchmark("hmmer").unwrap();
        let solo_p = profile_single_core(povray, &m, g);
        let mix = simulate_mix(&[povray, hmmer], &m, g);
        let slowdown = mix.cpi_mc[0] / solo_p.cpi_sc();
        assert!(slowdown < 1.05, "compute pair slowdown {slowdown}");
    }

    #[test]
    fn metrics_against_profiles() {
        let m = MachineConfig::baseline();
        let g = geometry();
        let names = ["gamess", "lbm"];
        let specs: Vec<_> = names.iter().map(|n| suite::benchmark(n).unwrap()).collect();
        let cpi_sc: Vec<f64> =
            specs.iter().map(|s| profile_single_core(s, &m, g).cpi_sc()).collect();
        let mix = simulate_mix(&specs, &m, g);
        let stp = mix.stp(&cpi_sc);
        let antt = mix.antt(&cpi_sc);
        assert!(stp > 0.5 && stp <= 2.0 + 1e-9, "stp {stp}");
        assert!(antt >= 1.0 - 1e-9, "antt {antt}");
    }

    #[test]
    fn deterministic_across_runs() {
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let specs: Vec<_> =
            ["gcc", "milc"].iter().map(|n| suite::benchmark(n).unwrap()).collect();
        let a = simulate_mix(&specs, &m, g);
        let b = simulate_mix(&specs, &m, g);
        assert_eq!(a, b);
    }

    #[test]
    fn bandwidth_limit_creates_contention_between_streamers() {
        // lbm and libquantum have disjoint footprints and already miss the
        // LLC when alone, so with unlimited bandwidth they barely
        // interact; a finite shared channel makes them queue behind each
        // other (§8 extension). The trace must be long enough that the
        // streams sweep far past the LLC within one pass.
        let g = TraceGeometry::new(200_000, 10);
        let specs: Vec<_> =
            ["lbm", "libquantum"].iter().map(|n| suite::benchmark(n).unwrap()).collect();

        let unlimited = MachineConfig::baseline();
        let solo_unl: Vec<f64> =
            specs.iter().map(|s| profile_single_core(s, &unlimited, g).cpi_sc()).collect();
        let mix_unl = simulate_mix(&specs, &unlimited, g);
        let slow_unl = mix_unl.cpi_mc[0] / solo_unl[0];
        assert!(slow_unl < 1.05, "unlimited bandwidth: slowdown {slow_unl}");

        // One access per 25 cycles: enough for either stream alone, not
        // for both.
        let limited = MachineConfig::baseline().with_mem_bandwidth(0.04);
        let solo_lim: Vec<f64> =
            specs.iter().map(|s| profile_single_core(s, &limited, g).cpi_sc()).collect();
        let mix_lim = simulate_mix(&specs, &limited, g);
        let slow_lim = mix_lim.cpi_mc[0] / solo_lim[0];
        assert!(
            slow_lim > slow_unl + 0.05,
            "bandwidth sharing must add slowdown: {slow_lim} vs {slow_unl}"
        );
    }

    #[test]
    fn partitioning_protects_the_victim() {
        // gamess against a streamer: on a unified LLC the streamer evicts
        // it; with 7 ways reserved it keeps (7/8 of) its working set.
        let m = MachineConfig::baseline();
        let g = TraceGeometry::new(100_000, 10);
        let gamess = suite::benchmark("gamess").unwrap();
        let lbm = suite::benchmark("lbm").unwrap();
        let solo = profile_single_core(gamess, &m, g).cpi_sc();
        let unified = simulate_mix(&[gamess, lbm], &m, g);
        let partitioned = simulate_mix_partitioned(&[gamess, lbm], &m, g, &[7, 1]);
        let slow_unified = unified.cpi_mc[0] / solo;
        let slow_part = partitioned.cpi_mc[0] / solo;
        assert!(
            slow_part < slow_unified - 0.2,
            "partitioning must protect gamess: {slow_part} vs {slow_unified}"
        );
    }

    #[test]
    fn partitioned_slices_isolate_traffic() {
        // Identical programs on equal slices behave identically.
        let m = MachineConfig::baseline();
        let g = geometry();
        let soplex = suite::benchmark("soplex").unwrap();
        let mix = simulate_mix_partitioned(&[soplex, soplex], &m, g, &[4, 4]);
        assert!(
            (mix.cpi_mc[0] - mix.cpi_mc[1]).abs() < 1e-9,
            "equal slices, equal CPI: {:?}",
            mix.cpi_mc
        );
    }

    #[test]
    #[should_panic(expected = "sum to the LLC associativity")]
    fn partition_ways_must_cover_cache() {
        let m = MachineConfig::baseline();
        let soplex = suite::benchmark("soplex").unwrap();
        simulate_mix_partitioned(&[soplex, soplex], &m, geometry(), &[4, 3]);
    }

    #[test]
    fn heterogeneous_little_core_runs_slower() {
        let m = MachineConfig::baseline();
        let g = geometry();
        let hmmer = suite::benchmark("hmmer").unwrap();
        // Same program on a big and a little core: the little copy's CPI
        // must be higher, but by less than 2x (memory time is unscaled).
        let mix = simulate_mix_heterogeneous(&[hmmer, hmmer], &m, g, &[1.0, 2.0]);
        let ratio = mix.cpi_mc[1] / mix.cpi_mc[0];
        assert!(ratio > 1.5, "little core must be slower: ratio {ratio}");
        assert!(ratio < 2.0 + 1e-9, "memory time does not scale: ratio {ratio}");
    }

    #[test]
    fn heterogeneous_matches_scaled_profile_when_solo() {
        // Simulating a program alone on a 1.5x-scaled core must match the
        // profile-scaling derivation exactly (same machinery on both
        // sides of the §8 heterogeneity extension).
        let m = MachineConfig::baseline();
        let g = geometry();
        let spec = suite::benchmark("gobmk").unwrap();
        let scaled_profile = profile_single_core(spec, &m, g).scaled_core(1.5);
        let solo = simulate_mix_heterogeneous(&[spec], &m, g, &[1.5]);
        assert!(
            (solo.cpi_mc[0] - scaled_profile.cpi_sc()).abs() < 1e-9,
            "simulated {} vs derived {}",
            solo.cpi_mc[0],
            scaled_profile.cpi_sc()
        );
    }

    #[test]
    fn llc_traffic_is_accounted() {
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let specs: Vec<_> =
            ["lbm", "mcf"].iter().map(|n| suite::benchmark(n).unwrap()).collect();
        let mix = simulate_mix(&specs, &m, g);
        assert!(mix.llc_accesses > 0);
        assert!(mix.llc_misses <= mix.llc_accesses);
        assert!(mix.llc_misses > 0, "streaming mixes must miss");
    }
}
