//! Per-core execution engine: drives one program's instruction stream
//! through its private caches and a (shared or private) LLC, accumulating
//! cycles.

use mppm_cache::{Replacement, SetAssocCache};
use mppm_trace::{
    BenchmarkSpec, CompiledTrace, TraceGeometry, TraceItem, TraceStream, FLAG_ACCESS, FLAG_STORE,
};
use std::sync::Arc;

use crate::{MachineConfig, MemoryChannel};

/// The shared (per-machine, not per-core) portion of the memory system:
/// the last-level cache and the off-chip channel.
///
/// The LLC is either *unified* (one cache competed for by every core —
/// the paper's baseline) or *way-partitioned*: each core owns a fixed
/// number of ways of every set, which behaves exactly like a private
/// slice with the same set count. The paper's §2.3 points out that MPPM
/// supports partitioning as long as the cache contention model does;
/// [`mppm::PartitionModel`] is that model, and the partitioned simulator
/// here is its ground truth.
#[derive(Debug, Clone)]
pub struct Uncore {
    /// One cache when unified; one slice per core when partitioned.
    llcs: Vec<SetAssocCache>,
    /// Shared memory channel (finite bandwidth if configured).
    pub memory: MemoryChannel,
    partitioned: bool,
}

impl Uncore {
    /// Builds the unified-LLC uncore for a machine configuration.
    pub fn new(machine: &MachineConfig) -> Self {
        Self {
            llcs: vec![SetAssocCache::new(machine.llc, Replacement::Lru)],
            memory: MemoryChannel::new(machine.mem_bandwidth),
            partitioned: false,
        }
    }

    /// Builds a way-partitioned uncore: core `i` owns `ways[i]` ways of
    /// every LLC set.
    ///
    /// # Panics
    ///
    /// Panics if the ways do not sum to the LLC's associativity or any
    /// core gets zero ways.
    pub fn partitioned(machine: &MachineConfig, ways: &[u32]) -> Self {
        assert!(!ways.is_empty(), "need at least one partition");
        assert!(ways.iter().all(|&w| w > 0), "every core needs at least one way");
        assert_eq!(
            ways.iter().sum::<u32>(),
            machine.llc.assoc,
            "partition ways must sum to the LLC associativity"
        );
        let sets = machine.llc.sets();
        let llcs = ways
            .iter()
            .map(|&w| {
                let size = sets * u64::from(w) * u64::from(machine.llc.line_bytes);
                SetAssocCache::new(
                    mppm_cache::CacheConfig::new(size, w, machine.llc.line_bytes, machine.llc.latency),
                    Replacement::Lru,
                )
            })
            .collect();
        Self { llcs, memory: MemoryChannel::new(machine.mem_bandwidth), partitioned: true }
    }

    /// Rebuilds the uncore in place for a new mix, reusing the LLC
    /// slabs (via [`SetAssocCache::reinit`]) when their shape is
    /// unchanged — the `SimArena` reset path. Observationally equivalent
    /// to `Uncore::new` / `Uncore::partitioned` with the same arguments.
    ///
    /// # Panics
    ///
    /// Same contract as [`Uncore::partitioned`] when `ways` is given.
    pub(crate) fn reinit(&mut self, machine: &MachineConfig, ways: Option<&[u32]>) {
        match ways {
            None => {
                self.llcs.truncate(1);
                match self.llcs.first_mut() {
                    Some(llc) => llc.reinit(machine.llc, Replacement::Lru),
                    None => self.llcs.push(SetAssocCache::new(machine.llc, Replacement::Lru)),
                }
                self.partitioned = false;
            }
            Some(ways) => {
                assert!(!ways.is_empty(), "need at least one partition");
                assert!(ways.iter().all(|&w| w > 0), "every core needs at least one way");
                assert_eq!(
                    ways.iter().sum::<u32>(),
                    machine.llc.assoc,
                    "partition ways must sum to the LLC associativity"
                );
                let sets = machine.llc.sets();
                self.llcs.truncate(ways.len());
                for (i, &w) in ways.iter().enumerate() {
                    let size = sets * u64::from(w) * u64::from(machine.llc.line_bytes);
                    let cfg = mppm_cache::CacheConfig::new(
                        size,
                        w,
                        machine.llc.line_bytes,
                        machine.llc.latency,
                    );
                    match self.llcs.get_mut(i) {
                        Some(llc) => llc.reinit(cfg, Replacement::Lru),
                        None => self.llcs.push(SetAssocCache::new(cfg, Replacement::Lru)),
                    }
                }
                self.partitioned = true;
            }
        }
        self.memory = MemoryChannel::new(machine.mem_bandwidth);
    }

    /// The LLC (slice) core `core_idx` accesses.
    pub fn llc_for(&mut self, core_idx: usize) -> &mut SetAssocCache {
        if self.partitioned {
            &mut self.llcs[core_idx]
        } else {
            &mut self.llcs[0]
        }
    }

    /// Whether the LLC is way-partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Total LLC hits and misses across all slices.
    pub fn llc_totals(&self) -> (u64, u64) {
        let hits = self.llcs.iter().map(SetAssocCache::hits).sum();
        let misses = self.llcs.iter().map(SetAssocCache::misses).sum();
        (hits, misses)
    }

    /// Total LLC evictions across all slices (misses that displaced a
    /// resident line — the kernel counter observability publishes per
    /// mix).
    pub fn llc_evictions(&self) -> u64 {
        self.llcs.iter().map(SetAssocCache::evictions).sum()
    }
}

/// How the engine treats the last-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcMode {
    /// Access the provided LLC normally.
    Real,
    /// Pretend every LLC access hits (the paper's "perfect LLC" run used
    /// to measure the memory CPI component). The provided cache is not
    /// touched.
    Perfect,
}

/// What one engine step did at the LLC, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcObservation {
    /// LRU-stack hit depth (0-based), `None` on a miss.
    pub depth: Option<u32>,
    /// Whether the access was a store.
    pub store: bool,
}

/// Result of one [`CoreEngine::step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Instructions retired by this step.
    pub insns: u64,
    /// LLC access performed by this step, if the private caches missed.
    pub llc: Option<LlcObservation>,
}

/// A shared-LLC access produced by a [`CoreEngine::run_until_llc`] burst,
/// waiting to be committed in global timestamp order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingLlc {
    /// Core-tagged block address.
    block: u64,
    /// Whether the access is a store.
    store: bool,
    /// Memory-level parallelism of the phase the access was issued under.
    mlp: f64,
}

/// Why a [`CoreEngine::run_until_llc`] burst stopped.
///
/// Both variants carry the local clock *at which the stopping step began*
/// (before its base-CPI charge): that is the timestamp at which a
/// smallest-clock-first scheduler would have dispatched the step, so it is
/// the key an event-driven scheduler must order the stop by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BurstStop {
    /// The burst generated a shared-LLC access. The private side of the
    /// step (stream advance, L1/L2 fills, base-CPI charge) has executed;
    /// the shared side waits for [`CoreEngine::commit_llc`].
    Llc {
        /// Local clock when the LLC-accessing step began.
        stamp: f64,
    },
    /// The burst retired through `limit` instructions without a shared
    /// event pending; the step that crossed the limit has fully executed.
    Limit {
        /// Local clock when the limit-crossing step began.
        stamp: f64,
    },
}

impl BurstStop {
    /// The scheduling timestamp of the stop.
    pub fn stamp(&self) -> f64 {
        match *self {
            BurstStop::Llc { stamp } | BurstStop::Limit { stamp } => stamp,
        }
    }
}

/// Where a core's trace items come from.
///
/// The live generator is the *reference* path — the original per-item
/// implementation every faster substrate is differential-tested against
/// (the PR 1/PR 3 playbook). The compiled path replays pre-generated
/// [`CompiledTrace`] blocks and must be bit-identical; the oracle in
/// `crates/cmpsim/tests/differential.rs` proves it.
#[derive(Debug, Clone)]
enum TraceSource {
    /// Per-item generation from the live [`TraceStream`].
    Reference(TraceStream),
    /// Batched replay of a pre-compiled trace.
    Compiled(CompiledCursor),
}

/// Replay position within a shared [`CompiledTrace`].
///
/// Mirrors [`TraceStream`]'s position semantics exactly: `insn` may sit
/// at the pre-rewind sentinel (`== trace_insns`) after the last op of a
/// pass, and the rewind to block 0 happens lazily on the next item.
/// Within a pass the block index is advanced eagerly, so
/// `current_phase` always reflects the op about to execute.
#[derive(Debug, Clone)]
struct CompiledCursor {
    trace: Arc<CompiledTrace>,
    /// Current block index (always valid; op may equal the block's len
    /// only at the end-of-pass sentinel).
    block: usize,
    /// Next op within the current block.
    op: usize,
    /// Position within the current pass, in instructions.
    insn: u64,
    /// Completed trace passes.
    wraps: u64,
}

impl CompiledCursor {
    fn new(trace: Arc<CompiledTrace>) -> Self {
        assert!(!trace.blocks().is_empty(), "compiled traces have at least one block");
        Self { trace, block: 0, op: 0, insn: 0, wraps: 0 }
    }

    /// Total instructions replayed (monotonic across wraps).
    fn position(&self) -> u64 {
        self.wraps * self.trace.geometry().trace_insns() + self.insn
    }

    /// Phase index at the current position; at the pre-rewind sentinel
    /// the phase wraps to block 0, exactly as [`TraceStream`] does.
    fn current_phase(&self) -> usize {
        let blocks = self.trace.blocks();
        if self.insn >= self.trace.geometry().trace_insns() {
            blocks[0].phase()
        } else {
            blocks[self.block].phase()
        }
    }

    /// Resets to the start of the trace, bumping the wrap count.
    fn rewind(&mut self) {
        self.block = 0;
        self.op = 0;
        self.insn = 0;
        self.wraps += 1;
    }

    /// Materializes the next item, advancing the cursor — the
    /// item-at-a-time view of the compiled trace used by
    /// [`CoreEngine::step`]; the burst path walks the columns directly.
    fn replay_item(&mut self) -> TraceItem {
        if self.insn == self.trace.geometry().trace_insns() {
            self.rewind();
        }
        let blocks = self.trace.blocks();
        let blk = &blocks[self.block];
        let item = blk.item(self.op);
        self.insn += u64::from(blk.insn_counts()[self.op]);
        self.op += 1;
        if self.op == blk.len() && self.block + 1 < blocks.len() {
            self.block += 1;
            self.op = 0;
        }
        item
    }
}

/// One core executing one program.
///
/// The engine owns the program's deterministic trace source — the live
/// [`TraceStream`] generator or a pre-compiled [`CompiledTrace`] replay —
/// and its private L1D and L2; the LLC is passed into
/// [`CoreEngine::step`] so several engines can share it. Block addresses
/// are tagged with the engine's id because co-scheduled programs share no
/// data.
#[derive(Debug, Clone)]
pub struct CoreEngine {
    source: TraceSource,
    machine: MachineConfig,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    core_idx: usize,
    tag: u64,
    /// Compute-throughput scale of this core (1.0 = the baseline big
    /// core; 2.0 = a little core taking twice the base cycles per
    /// instruction). Memory-side latencies are unaffected.
    core_factor: f64,
    cycles: f64,
    /// Per-cause cycle attribution (the Eyerman-style counter
    /// architecture the paper cites in §2.1).
    stack: mppm::CpiStack,
    /// Phase index the cached timing parameters below were taken from
    /// (`usize::MAX` until first refreshed, so the first step populates
    /// the cache).
    cached_phase: usize,
    /// The cached phase's base CPI, pre-scaled by the core factor.
    cached_base_cpi: f64,
    /// The cached phase's memory-level parallelism.
    cached_mlp: f64,
    /// Shared-LLC access generated by a burst, awaiting
    /// [`CoreEngine::commit_llc`].
    pending: Option<PendingLlc>,
}

impl CoreEngine {
    /// Creates an engine for `spec` on core `core_idx` of `machine`.
    pub fn new(
        spec: impl Into<Arc<BenchmarkSpec>>,
        machine: &MachineConfig,
        geometry: TraceGeometry,
        core_idx: usize,
    ) -> Self {
        Self::with_core_factor(spec, machine, geometry, core_idx, 1.0)
    }

    /// Creates an engine on a core whose compute throughput is scaled by
    /// `1/core_factor` — the heterogeneous-multi-core extension (§8). A
    /// factor of 2 models a little core at half the issue throughput;
    /// cache and memory latencies are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `core_factor` is not positive and finite.
    pub fn with_core_factor(
        spec: impl Into<Arc<BenchmarkSpec>>,
        machine: &MachineConfig,
        geometry: TraceGeometry,
        core_idx: usize,
        core_factor: f64,
    ) -> Self {
        Self::from_source(
            TraceSource::Reference(TraceStream::new(spec, geometry)),
            machine,
            core_idx,
            core_factor,
        )
    }

    /// Creates an engine that replays a pre-compiled trace instead of
    /// running the live generator — the batched production path (the
    /// geometry comes from the compiled trace). Bit-identical to the
    /// reference-stream constructors by the differential oracle.
    ///
    /// # Panics
    ///
    /// Panics if `core_factor` is not positive and finite.
    pub fn with_compiled_trace(
        trace: Arc<CompiledTrace>,
        machine: &MachineConfig,
        core_idx: usize,
        core_factor: f64,
    ) -> Self {
        Self::from_source(
            TraceSource::Compiled(CompiledCursor::new(trace)),
            machine,
            core_idx,
            core_factor,
        )
    }

    fn from_source(
        source: TraceSource,
        machine: &MachineConfig,
        core_idx: usize,
        core_factor: f64,
    ) -> Self {
        assert!(core_factor.is_finite() && core_factor > 0.0, "core factor must be positive");
        Self {
            source,
            machine: *machine,
            l1d: SetAssocCache::new(machine.l1d, Replacement::Lru),
            l2: SetAssocCache::new(machine.l2, Replacement::Lru),
            core_idx,
            tag: (core_idx as u64 + 1) << 44,
            core_factor,
            cycles: 0.0,
            stack: mppm::CpiStack::default(),
            cached_phase: usize::MAX,
            cached_base_cpi: 0.0,
            cached_mlp: 1.0,
            pending: None,
        }
    }

    /// Rebuilds this engine in place for a new mix — the `SimArena` pool
    /// path. Observationally equivalent to [`Self::from_source`] with the
    /// same arguments, but the private L1D/L2 slabs are reused (via
    /// [`SetAssocCache::reinit`]) when the machine's cache shapes match.
    fn reinit_from_source(
        &mut self,
        source: TraceSource,
        machine: &MachineConfig,
        core_idx: usize,
        core_factor: f64,
    ) {
        assert!(core_factor.is_finite() && core_factor > 0.0, "core factor must be positive");
        self.source = source;
        self.machine = *machine;
        self.l1d.reinit(machine.l1d, Replacement::Lru);
        self.l2.reinit(machine.l2, Replacement::Lru);
        self.core_idx = core_idx;
        self.tag = (core_idx as u64 + 1) << 44;
        self.core_factor = core_factor;
        self.cycles = 0.0;
        self.stack = mppm::CpiStack::default();
        self.cached_phase = usize::MAX;
        self.cached_base_cpi = 0.0;
        self.cached_mlp = 1.0;
        self.pending = None;
    }

    /// In-place counterpart of [`Self::with_core_factor`] (pool path).
    ///
    /// # Panics
    ///
    /// Panics if `core_factor` is not positive and finite.
    pub(crate) fn reinit_with_core_factor(
        &mut self,
        spec: impl Into<Arc<BenchmarkSpec>>,
        machine: &MachineConfig,
        geometry: TraceGeometry,
        core_idx: usize,
        core_factor: f64,
    ) {
        self.reinit_from_source(
            TraceSource::Reference(TraceStream::new(spec, geometry)),
            machine,
            core_idx,
            core_factor,
        );
    }

    /// In-place counterpart of [`Self::with_compiled_trace`] (pool path):
    /// allocation-free apart from the caches' own reallocation when the
    /// machine's cache shapes change.
    ///
    /// # Panics
    ///
    /// Panics if `core_factor` is not positive and finite.
    pub(crate) fn reinit_with_compiled_trace(
        &mut self,
        trace: Arc<CompiledTrace>,
        machine: &MachineConfig,
        core_idx: usize,
        core_factor: f64,
    ) {
        self.reinit_from_source(
            TraceSource::Compiled(CompiledCursor::new(trace)),
            machine,
            core_idx,
            core_factor,
        );
    }

    /// Local clock, in cycles.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Instructions retired so far (monotonic across trace wraps).
    pub fn insns(&self) -> u64 {
        match &self.source {
            TraceSource::Reference(stream) => stream.position(),
            TraceSource::Compiled(cursor) => cursor.position(),
        }
    }

    /// Completed trace passes (warmup plus measurement plus FAME
    /// re-iteration).
    pub fn trace_passes(&self) -> u64 {
        match &self.source {
            TraceSource::Reference(stream) => stream.wraps(),
            TraceSource::Compiled(cursor) => cursor.wraps,
        }
    }

    /// Accumulated memory-component stall cycles (the cycles a perfect LLC
    /// would have avoided), including channel queueing.
    pub fn mem_stall(&self) -> f64 {
        self.stack.mem_component()
    }

    /// Full per-cause cycle breakdown so far. `stack.total()` equals
    /// [`Self::cycles`].
    pub fn cpi_stack(&self) -> mppm::CpiStack {
        self.stack
    }

    /// Memory-level parallelism of the phase at the current position.
    pub fn current_mlp(&self) -> f64 {
        self.spec().phases()[self.source_current_phase()].mlp
    }

    /// The benchmark this engine runs.
    pub fn spec(&self) -> &BenchmarkSpec {
        match &self.source {
            TraceSource::Reference(stream) => stream.spec(),
            TraceSource::Compiled(cursor) => cursor.trace.spec(),
        }
    }

    /// Phase index at the current trace position, whichever the source.
    fn source_current_phase(&self) -> usize {
        match &self.source {
            TraceSource::Reference(stream) => stream.current_phase(),
            TraceSource::Compiled(cursor) => cursor.current_phase(),
        }
    }

    /// The next trace item, whichever the source.
    fn source_next_item(&mut self) -> TraceItem {
        match &mut self.source {
            TraceSource::Reference(stream) => Self::reference_item(stream),
            TraceSource::Compiled(cursor) => cursor.replay_item(),
        }
    }

    /// The reference path's per-item generation — the live generator the
    /// compiled replay is differential-tested against.
    fn reference_item(stream: &mut TraceStream) -> TraceItem {
        stream.next_item()
    }

    /// Re-reads the phase parameters after a phase change. Out of the
    /// per-item fast path: phases change at most once per profiling
    /// interval (thousands of items).
    #[cold]
    fn refresh_phase(&mut self, phase_idx: usize) {
        let (base_cpi, mlp) = {
            let phase = &self.spec().phases()[phase_idx];
            (phase.base_cpi, phase.mlp)
        };
        self.cached_base_cpi = base_cpi * self.core_factor;
        self.cached_mlp = mlp;
        self.cached_phase = phase_idx;
    }

    /// Executes one trace item, charging cycles to the local clock and
    /// accessing the memory hierarchy as needed.
    pub fn step(&mut self, uncore: &mut Uncore, mode: LlcMode) -> StepOutcome {
        debug_assert!(self.pending.is_none(), "commit the pending LLC access before stepping");
        let phase_idx = self.source_current_phase();
        if phase_idx != self.cached_phase {
            self.refresh_phase(phase_idx);
        }
        let (base_cpi, mlp) = (self.cached_base_cpi, self.cached_mlp);
        match self.source_next_item() {
            TraceItem::Compute { insns } => {
                let cost = f64::from(insns) * base_cpi;
                self.cycles += cost;
                self.stack.base += cost;
                StepOutcome { insns: u64::from(insns), llc: None }
            }
            TraceItem::Access(access) => {
                self.cycles += base_cpi;
                self.stack.base += base_cpi;
                let block = self.tag | access.block;
                if self.l1d.access(block).hit {
                    return StepOutcome { insns: 1, llc: None };
                }
                if self.l2.access(block).hit {
                    let stall = self.machine.stall_cycles(self.machine.l2.latency, mlp);
                    self.cycles += stall;
                    self.stack.l2_hit += stall;
                    return StepOutcome { insns: 1, llc: None };
                }
                let llc_hit_stall = self.machine.stall_cycles(self.machine.llc.latency, mlp);
                let observation = match mode {
                    LlcMode::Perfect => {
                        self.cycles += llc_hit_stall;
                        self.stack.llc_hit += llc_hit_stall;
                        LlcObservation { depth: Some(0), store: access.store }
                    }
                    LlcMode::Real => {
                        let r = uncore.llc_for(self.core_idx).access(block);
                        self.cycles += llc_hit_stall;
                        self.stack.llc_hit += llc_hit_stall;
                        if !r.hit {
                            let queue = uncore.memory.request(self.cycles) / mlp;
                            let mem = f64::from(self.machine.mem_latency) / mlp;
                            self.cycles += mem + queue;
                            self.stack.memory += mem;
                            self.stack.queue += queue;
                        }
                        LlcObservation { depth: r.depth, store: access.store }
                    }
                };
                StepOutcome { insns: 1, llc: Some(observation) }
            }
        }
    }

    /// Executes trace items *locally* — compute batches and private L1/L2
    /// hits, which touch no shared state — until either a shared-LLC
    /// access is generated or the retired-instruction count reaches
    /// `limit`.
    ///
    /// On [`BurstStop::Llc`] the private half of the access step has run
    /// (stream advanced, L1/L2 filled, base CPI charged); the shared half
    /// must be completed with [`CoreEngine::commit_llc`] before the next
    /// burst or step. On [`BurstStop::Limit`] the crossing step has fully
    /// executed and the engine state matches a per-step loop stopped at
    /// the same check.
    ///
    /// Always executes at least one item; callers pass `limit >`
    /// [`Self::insns`].
    ///
    /// # Panics
    ///
    /// Panics if an LLC access is pending from a previous burst.
    pub fn run_until_llc(&mut self, limit: u64) -> BurstStop {
        assert!(self.pending.is_none(), "commit the pending LLC access before bursting");
        match self.source {
            TraceSource::Reference(_) => self.reference_run_until_llc(limit),
            TraceSource::Compiled(_) => self.compiled_run_until_llc(limit),
        }
    }

    /// The per-item burst loop over the live generator — the reference
    /// implementation [`Self::compiled_run_until_llc`] is
    /// differential-tested against.
    fn reference_run_until_llc(&mut self, limit: u64) -> BurstStop {
        loop {
            let stamp = self.cycles;
            let phase_idx = self.source_current_phase();
            if phase_idx != self.cached_phase {
                self.refresh_phase(phase_idx);
            }
            match self.source_next_item() {
                TraceItem::Compute { insns } => {
                    let cost = f64::from(insns) * self.cached_base_cpi;
                    self.cycles += cost;
                    self.stack.base += cost;
                }
                TraceItem::Access(access) => {
                    self.cycles += self.cached_base_cpi;
                    self.stack.base += self.cached_base_cpi;
                    let block = self.tag | access.block;
                    if !self.l1d.access(block).hit {
                        if self.l2.access(block).hit {
                            let stall =
                                self.machine.stall_cycles(self.machine.l2.latency, self.cached_mlp);
                            self.cycles += stall;
                            self.stack.l2_hit += stall;
                        } else {
                            self.pending = Some(PendingLlc {
                                block,
                                store: access.store,
                                mlp: self.cached_mlp,
                            });
                            return BurstStop::Llc { stamp };
                        }
                    }
                }
            }
            if self.insns() >= limit {
                return BurstStop::Limit { stamp };
            }
        }
    }

    /// The batched burst loop over a compiled trace: executes whole
    /// blocks against the flat structure-of-arrays columns. Address
    /// generation and classification were paid once at compile time;
    /// phase parameters and the L2 stall are loaded once per *block*; the
    /// inner loop walks three contiguous arrays and the private caches.
    ///
    /// Charges the exact same f64 operations in the exact same order as
    /// [`Self::reference_run_until_llc`] — compute batches stay clipped
    /// at interval boundaries as the generator emitted them, because
    /// f64 accumulation is not associative and merging adjacent batches
    /// would change low-order bits.
    fn compiled_run_until_llc(&mut self, limit: u64) -> BurstStop {
        let trace = match &self.source {
            TraceSource::Compiled(cursor) => Arc::clone(&cursor.trace),
            TraceSource::Reference(_) => unreachable!("dispatched on the compiled source"),
        };
        let trace_len = trace.geometry().trace_insns();
        let n_blocks = trace.blocks().len();
        loop {
            // Per-block header: lazy rewind at the pass sentinel, then
            // one phase refresh for the whole block.
            let block_idx = {
                let TraceSource::Compiled(c) = &mut self.source else { unreachable!() };
                if c.insn == trace_len {
                    c.rewind();
                }
                c.block
            };
            let blk = &trace.blocks()[block_idx];
            if blk.phase() != self.cached_phase {
                self.refresh_phase(blk.phase());
            }
            let base_cpi = self.cached_base_cpi;
            let mlp = self.cached_mlp;
            let l2_stall = self.machine.stall_cycles(self.machine.l2.latency, mlp);
            let counts = blk.insn_counts();
            let ids = blk.block_ids();
            let flags = blk.flags();
            let n_ops = counts.len();

            // `c` borrows only the `source` field, so the cycle/stack/
            // cache fields stay independently mutable in the hot loop.
            let TraceSource::Compiled(c) = &mut self.source else { unreachable!() };
            let wraps_off = c.wraps * trace_len;
            while c.op < n_ops {
                let i = c.op;
                let stamp = self.cycles;
                if flags[i] & FLAG_ACCESS == 0 {
                    let cost = f64::from(counts[i]) * base_cpi;
                    self.cycles += cost;
                    self.stack.base += cost;
                    c.op = i + 1;
                    c.insn += u64::from(counts[i]);
                } else {
                    self.cycles += base_cpi;
                    self.stack.base += base_cpi;
                    c.op = i + 1;
                    c.insn += 1;
                    let block = self.tag | ids[i];
                    if !self.l1d.access(block).hit {
                        if self.l2.access(block).hit {
                            self.cycles += l2_stall;
                            self.stack.l2_hit += l2_stall;
                        } else {
                            self.pending = Some(PendingLlc {
                                block,
                                store: flags[i] & FLAG_STORE != 0,
                                mlp,
                            });
                            if c.op == n_ops && block_idx + 1 < n_blocks {
                                c.block = block_idx + 1;
                                c.op = 0;
                            }
                            return BurstStop::Llc { stamp };
                        }
                    }
                }
                if wraps_off + c.insn >= limit {
                    if c.op == n_ops && block_idx + 1 < n_blocks {
                        c.block = block_idx + 1;
                        c.op = 0;
                    }
                    return BurstStop::Limit { stamp };
                }
            }
            // Block exhausted without stopping: step to the next block,
            // or leave the sentinel for the lazy rewind above.
            if block_idx + 1 < n_blocks {
                c.block = block_idx + 1;
                c.op = 0;
            }
        }
    }

    /// Commits the shared-LLC access a burst left pending: probes the
    /// (shared or partitioned) LLC and, on a miss, the memory channel,
    /// charging the same stalls in the same order as [`CoreEngine::step`].
    ///
    /// # Panics
    ///
    /// Panics if no access is pending.
    pub fn commit_llc(&mut self, uncore: &mut Uncore) -> LlcObservation {
        let p = self.pending.take().expect("a burst must have left an LLC access pending");
        let llc_hit_stall = self.machine.stall_cycles(self.machine.llc.latency, p.mlp);
        let r = uncore.llc_for(self.core_idx).access(p.block);
        self.cycles += llc_hit_stall;
        self.stack.llc_hit += llc_hit_stall;
        if !r.hit {
            let queue = uncore.memory.request(self.cycles) / p.mlp;
            let mem = f64::from(self.machine.mem_latency) / p.mlp;
            self.cycles += mem + queue;
            self.stack.memory += mem;
            self.stack.queue += queue;
        }
        LlcObservation { depth: r.depth, store: p.store }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mppm_cache::CacheConfig;
    use mppm_trace::{Phase, Region};

    fn machine() -> MachineConfig {
        MachineConfig::baseline()
    }

    fn spec(mem_ratio: f64, blocks: u64) -> BenchmarkSpec {
        BenchmarkSpec::new(
            "t",
            3,
            vec![Phase {
                mem_ratio,
                store_ratio: 0.2,
                base_cpi: 0.5,
                mlp: 2.0,
                regions: vec![Region::uniform(0, blocks, 1.0)],
            }],
            vec![0],
        )
        .unwrap()
    }

    fn run(engine: &mut CoreEngine, uncore: &mut Uncore, insns: u64) -> Vec<StepOutcome> {
        let mut outcomes = Vec::new();
        let start = engine.insns();
        while engine.insns() - start < insns {
            outcomes.push(engine.step(uncore, LlcMode::Real));
        }
        outcomes
    }

    #[test]
    fn l1_resident_program_runs_at_base_cpi() {
        let m = machine();
        let g = TraceGeometry::tiny();
        // 64 blocks fit easily in the 512-block L1D.
        let mut engine = CoreEngine::new(spec(0.3, 64), &m, g, 0);
        let mut uncore = Uncore::new(&m);
        run(&mut engine, &mut uncore, 20_000); // warm the caches
        let (c0, i0) = (engine.cycles(), engine.insns());
        run(&mut engine, &mut uncore, 50_000);
        let cpi = (engine.cycles() - c0) / (engine.insns() - i0) as f64;
        assert!((cpi - 0.5).abs() < 0.01, "warm cpi {cpi} should be base 0.5");
    }

    #[test]
    fn llc_resident_program_pays_llc_latency_only() {
        let m = machine();
        let g = TraceGeometry::tiny();
        // 6000 blocks: beyond L2 (4096) but within LLC (8192).
        let mut engine = CoreEngine::new(spec(0.3, 6000), &m, g, 0);
        let mut uncore = Uncore::new(&m);
        run(&mut engine, &mut uncore, 2 * g.trace_insns()); // warm: cover the set twice
        let (c0, i0, s0) = (engine.cycles(), engine.insns(), engine.mem_stall());
        run(&mut engine, &mut uncore, g.trace_insns());
        let insns = (engine.insns() - i0) as f64;
        let cpi = (engine.cycles() - c0) / insns;
        assert!(cpi > 0.5, "some LLC-hit stall expected");
        // Warm: only LLC-set-overflow misses go to memory.
        let mem_cpi = (engine.mem_stall() - s0) / insns;
        assert!(mem_cpi < 0.5, "warm mem cpi {mem_cpi} should be small");
        let (hits, misses) = uncore.llc_totals();
        assert!(hits > misses, "mostly LLC hits overall");
    }

    #[test]
    fn memory_bound_program_accumulates_mem_stall() {
        let m = machine();
        let g = TraceGeometry::tiny();
        // 100K blocks: misses everywhere.
        let mut engine = CoreEngine::new(spec(0.3, 100_000), &m, g, 0);
        let mut uncore = Uncore::new(&m);
        run(&mut engine, &mut uncore, 50_000);
        let mem_cpi = engine.mem_stall() / engine.insns() as f64;
        // ~0.3 accesses/insn, ~92% LLC miss rate, 200/2 cycles each.
        assert!(mem_cpi > 10.0, "mem cpi {mem_cpi}");
        let cpi = engine.cycles() / engine.insns() as f64;
        assert!(cpi > 10.0 && cpi < 40.0, "cpi {cpi}");
    }

    #[test]
    fn perfect_llc_mode_removes_memory_stall() {
        let m = machine();
        let g = TraceGeometry::tiny();
        let mk = || CoreEngine::new(spec(0.3, 100_000), &m, g, 0);
        let mut real = mk();
        let mut perfect = mk();
        let mut uncore_r = Uncore::new(&m);
        let mut uncore_p = Uncore::new(&m);
        while real.insns() < 50_000 {
            real.step(&mut uncore_r, LlcMode::Real);
        }
        while perfect.insns() < 50_000 {
            perfect.step(&mut uncore_p, LlcMode::Perfect);
        }
        // The cycle difference is exactly the accumulated memory stall.
        let diff = real.cycles() - perfect.cycles();
        assert!(
            (diff - real.mem_stall()).abs() < 1e-6,
            "difference {diff} vs mem_stall {}",
            real.mem_stall()
        );
        let (hits_p, misses_p) = uncore_p.llc_totals();
        assert_eq!(hits_p + misses_p, 0, "perfect mode leaves the LLC untouched");
    }

    #[test]
    fn engines_with_different_tags_conflict_in_shared_llc() {
        let m = machine();
        let g = TraceGeometry::tiny();
        // Two copies of a 6000-block program share an 8192-block LLC: each
        // fits alone, together they thrash. Drive them through the real
        // event-driven scheduler rather than a hand-rolled two-core loop.
        let mut engines = vec![
            CoreEngine::new(spec(0.3, 6000), &m, g, 0),
            CoreEngine::new(spec(0.3, 6000), &m, g, 1),
        ];
        let mut shared = Uncore::new(&m);
        crate::multi::event_interleave(&mut engines, &mut shared, 0, 100_000);
        let mem_cpi = engines[0].mem_stall() / engines[0].insns() as f64;
        assert!(mem_cpi > 0.2, "sharing should cause conflict misses, mem cpi {mem_cpi}");
    }

    #[test]
    fn deterministic_execution() {
        let m = machine();
        let g = TraceGeometry::tiny();
        let mk = || {
            (
                CoreEngine::new(spec(0.25, 5000), &m, g, 0),
                Uncore::new(&m),
            )
        };
        let (mut e1, mut l1) = mk();
        let (mut e2, mut l2) = mk();
        for _ in 0..10_000 {
            assert_eq!(e1.step(&mut l1, LlcMode::Real), e2.step(&mut l2, LlcMode::Real));
        }
        assert_eq!(e1.cycles(), e2.cycles());
    }

    #[test]
    fn llc_observations_report_stores() {
        let m = machine();
        let g = TraceGeometry::tiny();
        let mut engine = CoreEngine::new(spec(0.5, 50_000), &m, g, 0);
        let mut uncore = Uncore::new(&m);
        let outcomes = run(&mut engine, &mut uncore, 20_000);
        let obs: Vec<_> = outcomes.iter().filter_map(|o| o.llc).collect();
        assert!(!obs.is_empty());
        let stores = obs.iter().filter(|o| o.store).count();
        let ratio = stores as f64 / obs.len() as f64;
        assert!((ratio - 0.2).abs() < 0.05, "store ratio {ratio}");
    }

    #[test]
    fn custom_llc_geometry_is_respected() {
        // A tiny 64-line LLC forces misses even for small working sets.
        let mut m = machine();
        m.llc = CacheConfig::new(64 * 64, 4, 64, 16);
        let g = TraceGeometry::tiny();
        let mut engine = CoreEngine::new(spec(0.3, 6000), &m, g, 0);
        let mut uncore = Uncore::new(&m);
        run(&mut engine, &mut uncore, 30_000);
        let (hits, misses) = uncore.llc_totals();
        assert!(misses > hits);
    }
}
