//! The simulated machine: the paper's Tables 1 and 2.

use mppm::MachineSummary;
use mppm_cache::CacheConfig;
use serde::{Deserialize, Serialize};

/// Core-side timing parameters (paper Table 1: 8-stage, 4-wide, 128-entry
/// ROB, perfect branch prediction).
///
/// The simulator uses an interval-style approximation of the out-of-order
/// core: the workload's base CPI already reflects `width`-wide issue, the
/// ROB hides up to [`CoreConfig::hide_cycles`] of access latency entirely
/// (covering L1 and the pipelined L2), and longer stalls are divided by
/// the workload phase's memory-level parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Issue width (documentation of the modeled core; the workload's base
    /// CPI encodes its effect).
    pub width: u32,
    /// Reorder-buffer entries (likewise encoded via `hide_cycles`/MLP).
    pub rob: u32,
    /// Cycles of access latency the core hides completely.
    pub hide_cycles: u32,
}

impl CoreConfig {
    /// The paper's baseline core.
    pub fn baseline() -> Self {
        Self { width: 4, rob: 128, hide_cycles: 12 }
    }
}

/// A full machine configuration (Table 1 plus one LLC row of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Core timing parameters.
    pub core: CoreConfig,
    /// Private per-core L1 data cache (32KB, 8-way, 1 cycle).
    pub l1d: CacheConfig,
    /// Private per-core L2 cache (256KB, 8-way, 10 cycles).
    pub l2: CacheConfig,
    /// Shared last-level cache (Table 2).
    pub llc: CacheConfig,
    /// Main-memory latency in cycles.
    pub mem_latency: u32,
    /// Off-chip bandwidth in accesses per cycle shared by all cores;
    /// `None` (the paper's Table 1 baseline) means unlimited concurrency.
    /// This is the §8 "bandwidth sharing" extension.
    pub mem_bandwidth: Option<f64>,
}

/// Number of LLC configurations in Table 2.
pub const LLC_CONFIG_COUNT: usize = 6;

/// The paper's six LLC configurations (Table 2), 1-indexed in the paper:
/// `llc_configs()[0]` is config #1 (512KB, 8-way, 16 cycles) and so on.
pub fn llc_configs() -> [CacheConfig; LLC_CONFIG_COUNT] {
    [
        CacheConfig::new(512 * 1024, 8, 64, 16),
        CacheConfig::new(512 * 1024, 16, 64, 20),
        CacheConfig::new(1024 * 1024, 8, 64, 18),
        CacheConfig::new(1024 * 1024, 16, 64, 22),
        CacheConfig::new(2 * 1024 * 1024, 8, 64, 20),
        CacheConfig::new(2 * 1024 * 1024, 16, 64, 24),
    ]
}

impl MachineConfig {
    /// The paper's baseline machine: Table 1 with LLC config #1 (the
    /// smallest LLC, chosen "to stress our model").
    pub fn baseline() -> Self {
        Self {
            core: CoreConfig::baseline(),
            l1d: CacheConfig::new(32 * 1024, 8, 64, 1),
            l2: CacheConfig::new(256 * 1024, 8, 64, 10),
            llc: llc_configs()[0],
            mem_latency: 200,
            mem_bandwidth: None,
        }
    }

    /// The baseline machine with a different LLC.
    pub fn with_llc(mut self, llc: CacheConfig) -> Self {
        self.llc = llc;
        self
    }

    /// The machine with a finite shared memory bandwidth (accesses per
    /// cycle).
    pub fn with_mem_bandwidth(mut self, accesses_per_cycle: f64) -> Self {
        self.mem_bandwidth = Some(accesses_per_cycle);
        self
    }

    /// The machine parameters the model cares about, recorded into
    /// profiles.
    pub fn summary(&self) -> MachineSummary {
        MachineSummary { llc: self.llc, mem_latency: self.mem_latency }
    }

    /// Stall cycles the core observes for a completed access at
    /// `total_latency`, given the phase's memory-level parallelism.
    pub fn stall_cycles(&self, total_latency: u32, mlp: f64) -> f64 {
        f64::from(total_latency.saturating_sub(self.core.hide_cycles)) / mlp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_1() {
        let m = MachineConfig::baseline();
        assert_eq!(m.core.width, 4);
        assert_eq!(m.core.rob, 128);
        assert_eq!(m.l1d.size_bytes, 32 * 1024);
        assert_eq!(m.l1d.latency, 1);
        assert_eq!(m.l2.size_bytes, 256 * 1024);
        assert_eq!(m.l2.assoc, 8);
        assert_eq!(m.l2.latency, 10);
        assert_eq!(m.mem_latency, 200);
        // Config #1.
        assert_eq!(m.llc.size_bytes, 512 * 1024);
        assert_eq!(m.llc.assoc, 8);
        assert_eq!(m.llc.latency, 16);
    }

    #[test]
    fn llc_configs_match_table_2() {
        let cfgs = llc_configs();
        let expected: [(u64, u32, u32); 6] = [
            (512 * 1024, 8, 16),
            (512 * 1024, 16, 20),
            (1024 * 1024, 8, 18),
            (1024 * 1024, 16, 22),
            (2 * 1024 * 1024, 8, 20),
            (2 * 1024 * 1024, 16, 24),
        ];
        for (cfg, (size, assoc, lat)) in cfgs.iter().zip(expected) {
            assert_eq!(cfg.size_bytes, size);
            assert_eq!(cfg.assoc, assoc);
            assert_eq!(cfg.latency, lat);
            assert_eq!(cfg.line_bytes, 64);
        }
    }

    #[test]
    fn stall_model_hides_short_latencies() {
        let m = MachineConfig::baseline();
        assert_eq!(m.stall_cycles(1, 2.0), 0.0, "L1 hit fully hidden");
        assert_eq!(m.stall_cycles(10, 2.0), 0.0, "L2 hit fully hidden");
        assert!((m.stall_cycles(16, 2.0) - 2.0).abs() < 1e-12, "LLC hit partially exposed");
        assert!((m.stall_cycles(216, 2.0) - 102.0).abs() < 1e-12, "memory exposed, MLP-divided");
    }

    #[test]
    fn summary_projects_model_fields() {
        let m = MachineConfig::baseline();
        let s = m.summary();
        assert_eq!(s.llc, m.llc);
        assert_eq!(s.mem_latency, 200);
    }
}
