//! Reusable per-worker simulation scratch — the allocation-free steady
//! state (DESIGN.md §14).
//!
//! A [`SimArena`] owns every heap structure a detailed mix simulation
//! needs: the [`Uncore`] (LLC slabs + memory channel), one pooled
//! [`CoreEngine`] per core (each holding its private L1/L2 slabs), the
//! scheduler's event heap, the interleaver's bookkeeping vectors, the
//! compiled-trace dedup map, and a content-keyed memo of resolved
//! traces. [`crate::MixSim::arena`] threads one through a run; between
//! runs everything is *reset in place* — `clear()` + `resize()` on
//! vectors, [`SetAssocCache::reinit`](mppm_cache::SetAssocCache) on
//! cache slabs — never reallocated, so after the first mix of a given
//! shape a worker performs **zero** heap allocations per simulation
//! (proven by the counting-allocator harness in
//! `tests/alloc_steady.rs`).
//!
//! # Reset invariants
//!
//! Correctness does not rest on "we remembered to clear everything" —
//! it rests on two stronger properties, both differentially tested:
//!
//! 1. **Reset ≡ fresh.** Every pooled structure's `reinit`/`reset`
//!    restores the exact observable state of a newly constructed one
//!    (unit-tested per structure, e.g.
//!    `reinit_with_matching_shape_behaves_like_fresh` in `mppm-cache`).
//! 2. **Single code path.** A run *without* an arena builds a throwaway
//!    [`SimArena`] internally and executes the identical code, so the
//!    arena path cannot drift from the fresh path — they are the same
//!    path. Bit-exactness is pinned by the golden snapshot and the
//!    proptest oracle (`tests/differential.rs`).
//!
//! Together with the zero-allocation proof these rule out cross-mix
//! state leaks: if a warm run allocates nothing and produces bytes
//! identical to a cold run, no stale state influenced it.
//!
//! Shape changes are safe, not just same-shape reuse: interleaving
//! mixes of different core counts or LLC geometries through one arena
//! re-shapes the pools (growing reallocates once, shrinking truncates)
//! and stays bit-exact — property-tested by
//! `arena_reuse_matches_fresh_allocation` in `tests/differential.rs`.
//!
//! # Ownership model
//!
//! One arena per worker thread, owned by the worker loop and lent to
//! each run (`&mut` — runs through one arena are necessarily serial).
//! Arenas are `Send` (no interior sharing), so pools can hand them
//! across threads, but they are deliberately not `Sync`: there is
//! nothing useful to share. The campaign executor keeps one per worker
//! via `parallel_map_with`; the `mppmd` store keeps a checkout pool.

use std::collections::BinaryHeap;
use std::sync::Arc;

use mppm_trace::CompiledTrace;

use crate::multi::{Event, InterleaveState};
use crate::{CoreEngine, Uncore};

/// Intra-mix compiled-trace dedup map, keyed on the `&BenchmarkSpec`
/// address (as `usize`). Capacity-hinted and cleared per mix; only ever
/// used point-wise (`get`/`insert`/`clear`).
// mppm-lint: allow(nondet-map-iteration): keyed get/insert/clear only, never iterated, so hash order cannot reach any result
pub(crate) type PtrMap = std::collections::HashMap<usize, Arc<CompiledTrace>>;

/// Reusable, resettable scratch for detailed mix simulations: engine
/// and cache pools, scheduler heap, interleaver state, and a
/// compiled-trace memo. See the [module docs](self) for the reset
/// invariants and ownership model, and [`crate::MixSim::arena`] for
/// usage.
///
/// ```
/// use mppm_sim::{MachineConfig, MixSim, SimArena};
/// use mppm_trace::{suite, TraceGeometry};
///
/// let gamess = suite::benchmark("gamess").unwrap();
/// let lbm = suite::benchmark("lbm").unwrap();
/// let machine = MachineConfig::baseline();
/// let mut arena = SimArena::new();
/// // First run warms the arena; later runs allocate nothing.
/// let warm = MixSim::new(&[gamess, lbm], &machine, TraceGeometry::tiny())
///     .arena(&mut arena)
///     .run();
/// let again = MixSim::new(&[gamess, lbm], &machine, TraceGeometry::tiny())
///     .arena(&mut arena)
///     .run();
/// assert_eq!(warm, again);
/// ```
pub struct SimArena {
    /// Pooled LLC slabs + memory channel; `None` until the first run.
    pub(crate) uncore: Option<Uncore>,
    /// Pooled per-core engines (private L1/L2 slabs live inside).
    /// Re-shaped to the mix's core count each run.
    pub(crate) engines: Vec<CoreEngine>,
    /// The event scheduler's heap; never holds more than one event per
    /// core, so a warm heap never grows.
    pub(crate) heap: BinaryHeap<Event>,
    /// Interleaver bookkeeping (measurement windows, per-core LLC
    /// tallies).
    pub(crate) state: InterleaveState,
    /// Scratch for the implicit all-ones `core_factors` slice.
    pub(crate) unit_factors: Vec<f64>,
    /// Intra-mix spec-pointer dedup map.
    pub(crate) dedup: PtrMap,
    /// Content-keyed memo of every trace this arena has resolved:
    /// steady-state runs hit this and skip even the shared
    /// [`crate::TraceCache`]'s string-keyed lookup. Compilation is a
    /// pure function of `(spec, geometry)`, so memo warmth cannot
    /// affect results.
    pub(crate) memo: Vec<Arc<CompiledTrace>>,
}

impl SimArena {
    /// An empty (cold) arena holding no allocations. The first run
    /// through it allocates exactly what an arena-less run would; later
    /// runs reuse those buffers.
    pub fn new() -> Self {
        Self {
            uncore: None,
            engines: Vec::new(),
            heap: BinaryHeap::new(),
            state: InterleaveState::empty(),
            unit_factors: Vec::new(),
            dedup: PtrMap::default(),
            memo: Vec::new(),
        }
    }

    /// Drops every pooled structure and memoized trace, returning the
    /// arena to its cold state. Useful when a worker moves to a
    /// workload with permanently different shapes and wants the memory
    /// back; never required for correctness.
    pub fn clear(&mut self) {
        *self = Self::new();
    }

    /// Number of distinct compiled traces this arena has memoized.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

impl Default for SimArena {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SimArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimArena")
            .field("warm", &self.uncore.is_some())
            .field("engines", &self.engines.len())
            .field("memo", &self.memo.len())
            .finish_non_exhaustive()
    }
}
