//! Single-core runs: the profiler that produces MPPM's inputs, and plain
//! isolated runs for validation.

use mppm::{IntervalProfile, SingleCoreProfile};
use mppm_cache::Sdc;
use mppm_trace::{BenchmarkSpec, TraceGeometry};

use crate::{CoreEngine, LlcMode, MachineConfig, Uncore};

/// Statistics of a plain isolated run (no profiling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleRunStats {
    /// Total cycles.
    pub cycles: f64,
    /// Total instructions.
    pub insns: u64,
    /// LLC accesses (loads and stores that missed the private caches).
    pub llc_accesses: u64,
    /// LLC misses.
    pub llc_misses: u64,
}

impl SingleRunStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        self.cycles / self.insns as f64
    }
}

/// Runs `spec` alone for `passes` full traces and returns aggregate
/// statistics. With [`LlcMode::Perfect`] every LLC access hits — the
/// difference in CPI against a [`LlcMode::Real`] run is the memory CPI
/// component (the paper's two-run method of measuring `CPI_mem`).
pub fn run_single_core(
    spec: &BenchmarkSpec,
    machine: &MachineConfig,
    geometry: TraceGeometry,
    passes: u32,
    mode: LlcMode,
) -> SingleRunStats {
    assert!(passes > 0, "must run at least one pass");
    let mut engine = CoreEngine::new(spec.clone(), machine, geometry, 0);
    let mut uncore = Uncore::new(machine);
    let total = geometry.trace_insns() * u64::from(passes);
    let mut llc_accesses = 0;
    let mut llc_misses = 0;
    while engine.insns() < total {
        let outcome = engine.step(&mut uncore, mode);
        if let Some(obs) = outcome.llc {
            llc_accesses += 1;
            if obs.depth.is_none() {
                llc_misses += 1;
            }
        }
    }
    SingleRunStats { cycles: engine.cycles(), insns: engine.insns(), llc_accesses, llc_misses }
}

/// Runs `spec` alone and collects the per-interval profile MPPM consumes
/// (paper §2.1): CPI, memory CPI and LLC stack-distance counters per
/// interval.
///
/// One full warmup pass runs first so the profile reflects steady-state
/// behavior (the paper's SimPoints are likewise measured on warmed
/// caches); the detailed multi-core measurement warms up the same way, so
/// isolated and co-scheduled runs stay directly comparable. Use
/// [`profile_single_core_with`] to control the warmup.
pub fn profile_single_core(
    spec: &BenchmarkSpec,
    machine: &MachineConfig,
    geometry: TraceGeometry,
) -> SingleCoreProfile {
    profile_single_core_with(spec, machine, geometry, 1)
}

/// [`profile_single_core`] with an explicit number of warmup trace passes.
pub fn profile_single_core_with(
    spec: &BenchmarkSpec,
    machine: &MachineConfig,
    geometry: TraceGeometry,
    warmup_passes: u32,
) -> SingleCoreProfile {
    let mut engine = CoreEngine::new(spec.clone(), machine, geometry, 0);
    let mut uncore = Uncore::new(machine);
    let assoc = machine.llc.assoc;
    let mut intervals = Vec::with_capacity(geometry.intervals as usize);

    let warmup_insns = geometry.trace_insns() * u64::from(warmup_passes);
    while engine.insns() < warmup_insns {
        engine.step(&mut uncore, LlcMode::Real);
    }

    for interval_idx in 0..geometry.intervals {
        let interval_end =
            warmup_insns + u64::from(interval_idx + 1) * geometry.interval_insns;
        let cycles_before = engine.cycles();
        let stack_before = engine.cpi_stack();
        let mut sdc = Sdc::new(assoc);
        while engine.insns() < interval_end {
            if let Some(obs) = engine.step(&mut uncore, LlcMode::Real).llc {
                sdc.record(obs.depth);
            }
        }
        let phase = spec.phase_at(interval_idx, geometry);
        let stack = engine.cpi_stack().delta(&stack_before);
        intervals.push(IntervalProfile {
            insns: geometry.interval_insns,
            cycles: engine.cycles() - cycles_before,
            mem_stall_cycles: stack.mem_component(),
            sdc,
            fallback_penalty: f64::from(machine.mem_latency) / phase.mlp,
            stack,
        });
    }

    let profile = SingleCoreProfile {
        name: spec.name().to_string(),
        machine: machine.summary(),
        intervals,
    };
    profile.validate().expect("profiler output is structurally valid");
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use mppm_trace::suite;

    fn geometry() -> TraceGeometry {
        TraceGeometry::new(20_000, 10)
    }

    #[test]
    fn cold_profile_matches_plain_run() {
        // With zero warmup the profiler and a plain run are the same
        // machinery and must agree exactly.
        let m = MachineConfig::baseline();
        let g = geometry();
        let spec = suite::benchmark("gobmk").unwrap();
        let profile = profile_single_core_with(spec, &m, g, 0);
        let run = run_single_core(spec, &m, g, 1, LlcMode::Real);
        assert!((profile.cpi_sc() - run.cpi()).abs() < 1e-9, "same machinery, same CPI");
        let total_acc: f64 = profile.intervals.iter().map(|iv| iv.sdc.accesses()).sum();
        assert!((total_acc - run.llc_accesses as f64).abs() < 1e-9);
        let total_miss: f64 = profile.intervals.iter().map(|iv| iv.sdc.misses()).sum();
        assert!((total_miss - run.llc_misses as f64).abs() < 1e-9);
    }

    #[test]
    fn warm_profile_has_fewer_misses_than_cold() {
        let m = MachineConfig::baseline();
        let g = geometry();
        let spec = suite::benchmark("gamess").unwrap();
        let cold = profile_single_core_with(spec, &m, g, 0);
        let warm = profile_single_core_with(spec, &m, g, 1);
        assert!(warm.mpki() < cold.mpki() * 0.5, "warmup removes cold misses");
    }

    #[test]
    fn mem_cpi_equals_perfect_llc_delta() {
        // The paper's alternative measurement of CPI_mem: real minus
        // perfect-LLC CPI. Our counter-based measurement must agree
        // (cold-for-cold comparison).
        let m = MachineConfig::baseline();
        let g = geometry();
        for name in ["soplex", "mcf", "hmmer"] {
            let spec = suite::benchmark(name).unwrap();
            let profile = profile_single_core_with(spec, &m, g, 0);
            let real = run_single_core(spec, &m, g, 1, LlcMode::Real);
            let perfect = run_single_core(spec, &m, g, 1, LlcMode::Perfect);
            let delta = real.cpi() - perfect.cpi();
            assert!(
                (profile.cpi_mem() - delta).abs() < 1e-9,
                "{name}: counter {} vs two-run {delta}",
                profile.cpi_mem()
            );
        }
    }

    #[test]
    fn profile_has_expected_shape() {
        let m = MachineConfig::baseline();
        let g = geometry();
        let profile = profile_single_core(suite::benchmark("gamess").unwrap(), &m, g);
        assert_eq!(profile.intervals.len(), 10);
        assert_eq!(profile.interval_insns(), 20_000);
        assert_eq!(profile.machine.llc.assoc, 8);
        profile.validate().unwrap();
    }

    #[test]
    fn gamess_hits_llc_when_alone() {
        // The design intent of the stress benchmark: very low isolated LLC
        // miss rate once warm (its working set fits config #1's LLC).
        let m = MachineConfig::baseline();
        let g = TraceGeometry::new(50_000, 10);
        let profile = profile_single_core(suite::benchmark("gamess").unwrap(), &m, g);
        let miss_rate = profile.mpki() / profile.apki().max(1e-12);
        assert!(miss_rate < 0.1, "gamess warm isolated LLC miss rate {miss_rate}");
    }

    #[test]
    fn streamer_misses_llc_when_alone() {
        let m = MachineConfig::baseline();
        let g = geometry();
        let run = run_single_core(suite::benchmark("lbm").unwrap(), &m, g, 1, LlcMode::Real);
        let miss_rate = run.llc_misses as f64 / run.llc_accesses.max(1) as f64;
        assert!(miss_rate > 0.8, "lbm isolated LLC miss rate {miss_rate}");
    }

    #[test]
    fn multiple_passes_scale_insns() {
        let m = MachineConfig::baseline();
        let g = TraceGeometry::tiny();
        let one = run_single_core(suite::benchmark("hmmer").unwrap(), &m, g, 1, LlcMode::Real);
        let three = run_single_core(suite::benchmark("hmmer").unwrap(), &m, g, 3, LlcMode::Real);
        assert_eq!(three.insns, 3 * one.insns);
        // Later passes are warm, so the average can only improve; at this
        // tiny scale the cold first pass dominates, so just bound it.
        assert!(three.cpi() <= one.cpi() + 1e-9);
        assert!(three.cpi() > one.cpi() / 3.0, "passes are the same workload");
    }
}
