//! Trace-driven detailed multi-core simulator — the CMP$im substitute.
//!
//! The paper measures "ground truth" with CMP$im, a Pin-based x86
//! multi-core cache simulator, and collects its single-core MPPM profiles
//! with the same tool. CMP$im is not redistributable, so this crate
//! implements an equivalent trace-driven simulator over the synthetic
//! workloads of [`mppm_trace`]:
//!
//! * [`MachineConfig`] describes the paper's machine (Table 1): 4-wide
//!   out-of-order cores, private 32KB L1D and 256KB L2, a shared LLC
//!   ([`llc_configs`] lists Table 2's six configurations), 200-cycle
//!   memory, LRU everywhere, perfect branch prediction and instruction
//!   fetch.
//! * The core timing model charges each instruction its phase's base CPI
//!   and adds miss stalls `max(0, latency − hide) / MLP` — an interval-style
//!   approximation of a 128-entry-ROB core that hides L1/L2 latency and
//!   overlaps misses up to the workload's memory-level parallelism.
//! * [`profile_single_core`] runs one benchmark alone and produces the
//!   per-interval [`mppm::SingleCoreProfile`] (CPI, memory CPI, LLC
//!   stack-distance counters) that MPPM consumes.
//! * [`MixSim`] runs a multi-program mix with an event-driven
//!   scheduler: each core executes compute items and private-cache hits
//!   in local bursts, and only shared-LLC/memory-channel events are
//!   globally ordered (by arrival timestamp, core index as tie-break)
//!   through a binary heap — bit-identical to stepping cores one item at
//!   a time in local-clock order, but O(log cores) per *shared event*
//!   instead of O(cores) per *item*. Programs that finish re-iterate
//!   their trace so contention stays live (the FAME methodology), and
//!   each program's multi-core CPI is measured over its first full trace.
//!   The historical `simulate_mix*` free functions survive as deprecated
//!   wrappers over the builder.
//!
//! # Example
//!
//! ```
//! use mppm_sim::{profile_single_core, MachineConfig, MixSim};
//! use mppm_trace::{suite, TraceGeometry};
//!
//! let machine = MachineConfig::baseline();
//! let geometry = TraceGeometry::tiny();
//! let gamess = suite::benchmark("gamess").unwrap();
//!
//! let profile = profile_single_core(gamess, &machine, geometry);
//! assert!(profile.cpi_sc() > 0.3);
//!
//! let mix = MixSim::new(&[gamess, gamess], &machine, geometry).run();
//! assert!(mix.cpi_mc[0] >= profile.cpi_sc() * 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod engine;
mod machine;
mod memory;
mod multi;
mod single;

pub use arena::SimArena;
pub use engine::{BurstStop, CoreEngine, LlcMode, Uncore};
pub use memory::MemoryChannel;
pub use machine::{llc_configs, CoreConfig, MachineConfig, LLC_CONFIG_COUNT};
pub use multi::{
    event_interleave, reference_interleave, Execution, InterleaveOutcome, MixOptions, MixResult,
    MixSim, SchedKey, Scheduler, TraceCache,
};
// The deprecated free-function entry points stay re-exported so existing
// downstream code keeps compiling (with a deprecation warning at *their*
// call sites, not at this re-export).
#[allow(deprecated)]
pub use multi::{
    simulate_mix, simulate_mix_heterogeneous, simulate_mix_opts, simulate_mix_partitioned,
    simulate_mix_with,
};
pub use single::{
    profile_single_core, profile_single_core_with, run_single_core, SingleRunStats,
};
