//! Differential oracle: the event-driven interleaver against the
//! smallest-clock-first reference scheduler it replaced, and the
//! compiled-trace execution substrate against the live per-item
//! generator it replaced.
//!
//! Both schedulers — and both execution substrates — must be
//! **bit-identical** observationally: per-core CPI, completion cycles,
//! and per-core LLC access/miss counts agree to the last bit across
//! random mixes, geometries, LLC configurations, heterogeneous core
//! factors, way-partitioned LLCs, zero-warmup runs, and
//! bandwidth-limited memory channels. The finite-bandwidth channel is
//! the strictest case: `MemoryChannel::request` is stateful and
//! order-sensitive, so a single shared event committed out of order skews
//! every queueing delay after it.
//!
//! Case counts scale with `MPPM_ORACLE_CASES` (default 16) so CI can run
//! a quick pass on every PR while deep local runs stay available:
//!
//! ```text
//! MPPM_ORACLE_CASES=100 cargo test -p mppm-sim --test differential
//! ```

use mppm_sim::{llc_configs, Execution, MachineConfig, MixOptions, MixResult, MixSim, Scheduler};
use mppm_trace::{BenchmarkSpec, Phase, Region, TraceGeometry};
use proptest::prelude::*;

fn oracle_cases() -> u32 {
    std::env::var("MPPM_ORACLE_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(16)
}

/// Raw generated material for one phase:
/// `(mem_ratio, store_ratio, base_cpi, mlp, blocks, selector)`.
type RawPhase = (f64, f64, f64, f64, u64, u8);

fn phase_strategy() -> impl Strategy<Value = RawPhase> {
    (0.05f64..0.9, 0.0f64..0.9, 0.25f64..1.5, 1.0f64..8.0, 16u64..24_000, 0u8..4)
}

/// Raw generated material for one program: a seed, 1–3 phases, and a
/// 1–4 entry schedule (entries taken mod the phase count).
type RawSpec = (u64, Vec<RawPhase>, Vec<u8>);

fn spec_strategy() -> impl Strategy<Value = RawSpec> {
    (
        0u64..u64::MAX,
        collection::vec(phase_strategy(), 1..4),
        collection::vec(0u8..8, 1..5),
    )
}

fn mix_strategy(cores: std::ops::Range<usize>) -> impl Strategy<Value = Vec<RawSpec>> {
    collection::vec(spec_strategy(), cores)
}

fn build_phase(raw: RawPhase) -> Phase {
    let (mem_ratio, store_ratio, base_cpi, mlp, blocks, sel) = raw;
    // Selector bit 0 picks the pattern; bit 1 adds a smaller second region
    // so multi-region weighted sampling is exercised too.
    let mut regions = vec![if sel & 1 == 0 {
        Region::uniform(0, blocks, 1.0)
    } else {
        Region::stream(0, blocks, 1.0)
    }];
    if sel & 2 != 0 {
        regions.push(Region::uniform(1, (blocks / 3).max(1), 0.5));
    }
    Phase { mem_ratio, store_ratio, base_cpi, mlp, regions }
}

fn build_specs(raw: &[RawSpec]) -> Vec<BenchmarkSpec> {
    raw.iter()
        .enumerate()
        .map(|(core, (seed, raw_phases, raw_sched))| {
            let phases: Vec<Phase> = raw_phases.iter().map(|&r| build_phase(r)).collect();
            let schedule: Vec<usize> =
                raw_sched.iter().map(|&s| s as usize % phases.len()).collect();
            BenchmarkSpec::new(format!("oracle-{core}"), *seed, phases, schedule)
                .expect("generated spec is valid")
        })
        .collect()
}

/// Small geometries keep each case fast; both dimensions vary so interval
/// boundaries land at different instruction counts case to case.
fn build_geometry(interval_insns: u64, intervals: u32) -> TraceGeometry {
    TraceGeometry::new(interval_insns, intervals)
}

/// Runs the mix under both schedulers and asserts the results are
/// bit-identical, field by field.
fn assert_schedulers_agree(
    specs: &[BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
    opts: &MixOptions,
) -> (MixResult, MixResult) {
    let refs: Vec<&BenchmarkSpec> = specs.iter().collect();
    let build = |scheduler: Scheduler| {
        let mut sim = MixSim::new(&refs, machine, geometry)
            .warmup_passes(opts.warmup_passes)
            .scheduler(scheduler);
        if let Some(ways) = opts.ways {
            sim = sim.partitioned(ways);
        }
        if let Some(factors) = opts.core_factors {
            sim = sim.core_factors(factors);
        }
        sim.run()
    };
    let event = build(Scheduler::EventDriven);
    let reference = build(Scheduler::Reference);
    for core in 0..refs.len() {
        assert_eq!(
            event.cpi_mc[core].to_bits(),
            reference.cpi_mc[core].to_bits(),
            "core {core} CPI diverged: {} vs {}",
            event.cpi_mc[core],
            reference.cpi_mc[core]
        );
        assert_eq!(
            event.completion_cycles[core].to_bits(),
            reference.completion_cycles[core].to_bits(),
            "core {core} completion cycles diverged: {} vs {}",
            event.completion_cycles[core],
            reference.completion_cycles[core]
        );
        assert_eq!(
            event.llc_accesses_per_core[core], reference.llc_accesses_per_core[core],
            "core {core} LLC accesses diverged"
        );
        assert_eq!(
            event.llc_misses_per_core[core], reference.llc_misses_per_core[core],
            "core {core} LLC misses diverged"
        );
    }
    assert_eq!(event, reference, "full MixResult must be bit-identical");
    (event, reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(oracle_cases()))]

    /// Unified LRU LLC (all six Table 2 configurations), one warmup pass —
    /// the `simulate_mix` production path.
    #[test]
    fn unified_lru_mixes_match_reference(
        raw in mix_strategy(1..5),
        interval_insns in 1_000u64..6_000,
        intervals in 2u32..8,
        llc_sel in 0usize..6,
    ) {
        let specs = build_specs(&raw);
        let machine = MachineConfig::baseline().with_llc(llc_configs()[llc_sel]);
        let geometry = build_geometry(interval_insns, intervals);
        assert_schedulers_agree(&specs, &machine, geometry, &MixOptions::default());
    }

    /// Heterogeneous core factors (`simulate_mix_heterogeneous` path):
    /// per-core compute scaling shifts every arrival timestamp.
    #[test]
    fn heterogeneous_cores_match_reference(
        raw in mix_strategy(2..5),
        factors in collection::vec(0.5f64..2.5, 4),
        interval_insns in 1_000u64..6_000,
        intervals in 2u32..7,
    ) {
        let specs = build_specs(&raw);
        let geometry = build_geometry(interval_insns, intervals);
        let opts = MixOptions {
            core_factors: Some(&factors[..specs.len()]),
            ..MixOptions::default()
        };
        assert_schedulers_agree(&specs, &MachineConfig::baseline(), geometry, &opts);
    }

    /// Way-partitioned LLC (`simulate_mix_partitioned` path): each core
    /// owns a slice, so per-core traffic must stay isolated identically.
    #[test]
    fn partitioned_llc_matches_reference(
        raw in mix_strategy(4..5),
        layout_sel in 0usize..6,
        interval_insns in 1_000u64..6_000,
        intervals in 2u32..7,
    ) {
        // Layouts over the baseline 8-way LLC, from balanced to skewed.
        let layouts: [&[u32]; 6] =
            [&[4, 4], &[1, 7], &[6, 2], &[2, 3, 3], &[1, 1, 6], &[2, 2, 2, 2]];
        let ways = layouts[layout_sel];
        let specs = build_specs(&raw[..ways.len()]);
        let geometry = build_geometry(interval_insns, intervals);
        let opts = MixOptions { ways: Some(ways), ..MixOptions::default() };
        assert_schedulers_agree(&specs, &MachineConfig::baseline(), geometry, &opts);
    }

    /// `warmup_passes == 0`: the measurement window opens at cycle 0, so
    /// the first threshold is crossed before any event commits.
    #[test]
    fn zero_warmup_matches_reference(
        raw in mix_strategy(1..4),
        interval_insns in 1_000u64..6_000,
        intervals in 2u32..7,
    ) {
        let specs = build_specs(&raw);
        let geometry = build_geometry(interval_insns, intervals);
        let opts = MixOptions { warmup_passes: 0, ..MixOptions::default() };
        assert_schedulers_agree(&specs, &MachineConfig::baseline(), geometry, &opts);
    }

    /// Finite memory bandwidth: `MemoryChannel::request(now)` is stateful
    /// and order-sensitive — any commit-order divergence is amplified into
    /// different queueing delays for every later miss.
    #[test]
    fn bandwidth_limited_channel_matches_reference(
        raw in mix_strategy(2..5),
        bandwidth in 0.02f64..0.5,
        interval_insns in 1_000u64..5_000,
        intervals in 2u32..6,
    ) {
        let specs = build_specs(&raw);
        let machine = MachineConfig::baseline().with_mem_bandwidth(bandwidth);
        let geometry = build_geometry(interval_insns, intervals);
        assert_schedulers_agree(&specs, &machine, geometry, &MixOptions::default());
    }

    /// Timestamp-tie storm: identical specs on every core make *every*
    /// shared event a multi-way tie, so only the core-index tie-break
    /// keeps the schedulers aligned. Equal partitioned slices must also
    /// yield bit-equal CPIs across cores (per
    /// `partitioned_slices_isolate_traffic`).
    #[test]
    fn identical_specs_tie_storm_matches_reference(
        raw in spec_strategy(),
        cores in 2usize..5,
        interval_insns in 1_000u64..5_000,
        intervals in 2u32..6,
    ) {
        let raw_mix: Vec<RawSpec> = (0..cores).map(|_| raw.clone()).collect();
        // Identical *contents* on every core: build_specs varies the name
        // only, and trace generation depends only on seed/phases/schedule.
        let specs = build_specs(&raw_mix);
        assert_eq!(specs[0].phases(), specs[1].phases());
        assert_eq!(specs[0].seed(), specs[1].seed());
        let geometry = build_geometry(interval_insns, intervals);
        assert_schedulers_agree(&specs, &MachineConfig::baseline(), geometry, &MixOptions::default());

        // On equal slices the tie storm must also keep cores bit-equal.
        if 8 % cores == 0 {
            let ways = vec![8 / cores as u32; cores];
            let opts = MixOptions { ways: Some(&ways), ..MixOptions::default() };
            let (event, _) =
                assert_schedulers_agree(&specs, &MachineConfig::baseline(), geometry, &opts);
            for core in 1..cores {
                assert_eq!(
                    event.cpi_mc[0].to_bits(),
                    event.cpi_mc[core].to_bits(),
                    "equal slices, bit-equal CPI: {:?}",
                    event.cpi_mc
                );
            }
        }
    }

    /// API consolidation oracle: every retired `simulate_mix*` wrapper
    /// must stay a zero-diff alias of the [`MixSim`] builder it now
    /// delegates to, across random mixes and geometries.
    #[test]
    #[allow(deprecated)] // the wrappers are the subject under test
    fn deprecated_wrappers_match_the_builder(
        raw in mix_strategy(2..5),
        factors in collection::vec(0.5f64..2.5, 4),
        warmup in 0u32..3,
        interval_insns in 1_000u64..5_000,
        intervals in 2u32..6,
    ) {
        use mppm_sim::{
            simulate_mix, simulate_mix_heterogeneous, simulate_mix_opts,
            simulate_mix_partitioned, simulate_mix_with,
        };
        let specs = build_specs(&raw);
        let refs: Vec<&BenchmarkSpec> = specs.iter().collect();
        let machine = MachineConfig::baseline();
        let g = build_geometry(interval_insns, intervals);

        let builder = MixSim::new(&refs, &machine, g).run();
        prop_assert_eq!(&simulate_mix(&refs, &machine, g), &builder);
        prop_assert_eq!(&simulate_mix_with(&refs, &machine, g, 1), &builder);

        let factors = &factors[..refs.len()];
        prop_assert_eq!(
            &simulate_mix_heterogeneous(&refs, &machine, g, factors),
            &MixSim::new(&refs, &machine, g).core_factors(factors).run()
        );

        // Equal slices of the baseline 8-way LLC when the mix divides it.
        if 8 % refs.len() == 0 {
            let ways = vec![8 / refs.len() as u32; refs.len()];
            prop_assert_eq!(
                &simulate_mix_partitioned(&refs, &machine, g, &ways),
                &MixSim::new(&refs, &machine, g).partitioned(&ways).run()
            );
        }

        let opts = MixOptions {
            warmup_passes: warmup,
            core_factors: Some(factors),
            scheduler: Scheduler::Reference,
            ..MixOptions::default()
        };
        prop_assert_eq!(
            &simulate_mix_opts(&refs, &machine, g, &opts),
            &MixSim::new(&refs, &machine, g)
                .warmup_passes(warmup)
                .core_factors(factors)
                .scheduler(Scheduler::Reference)
                .run()
        );
    }

    /// The compiled-execution oracle (property 8): replaying compiled
    /// phase blocks must be bit-identical to generating every item live
    /// from the reference stream — across phase-boundary splits (the
    /// generated schedules put phase changes at varying interval
    /// boundaries, so blocks split differently case to case), warmup
    /// passes 0–2, heterogeneous core factors, all six LLC
    /// configurations, and *both* schedulers. Multi-core shared-LLC
    /// mixes preempt bursts mid-block constantly (every shared event
    /// suspends a burst inside a compiled block and resumes it after
    /// `commit_llc`), which is exactly the cursor state the batched loop
    /// must keep exact.
    #[test]
    fn compiled_blocks_match_reference_stream(
        raw in mix_strategy(1..5),
        factors in collection::vec(0.5f64..2.5, 4),
        warmup in 0u32..3,
        llc_sel in 0usize..6,
        interval_insns in 1_000u64..5_000,
        intervals in 2u32..7,
    ) {
        let specs = build_specs(&raw);
        let refs: Vec<&BenchmarkSpec> = specs.iter().collect();
        let machine = MachineConfig::baseline().with_llc(llc_configs()[llc_sel]);
        let geometry = build_geometry(interval_insns, intervals);
        for scheduler in [Scheduler::EventDriven, Scheduler::Reference] {
            let build = |execution: Execution| {
                MixSim::new(&refs, &machine, geometry)
                    .warmup_passes(warmup)
                    .core_factors(&factors[..refs.len()])
                    .scheduler(scheduler)
                    .execution(execution)
                    .run()
            };
            let compiled = build(Execution::Compiled);
            let reference = build(Execution::ReferenceStream);
            for core in 0..refs.len() {
                prop_assert_eq!(
                    compiled.cpi_mc[core].to_bits(),
                    reference.cpi_mc[core].to_bits(),
                    "{:?}: core {} CPI diverged: {} vs {}",
                    scheduler,
                    core,
                    compiled.cpi_mc[core],
                    reference.cpi_mc[core]
                );
                prop_assert_eq!(
                    compiled.completion_cycles[core].to_bits(),
                    reference.completion_cycles[core].to_bits(),
                    "{:?}: core {} completion cycles diverged",
                    scheduler,
                    core
                );
            }
            prop_assert_eq!(
                &compiled,
                &reference,
                "{:?}: full MixResult must be bit-identical",
                scheduler
            );
        }
    }

    /// Arena reset semantics: a *sequence* of mixes with different core
    /// counts, LLC configurations, and trace geometries, all threaded
    /// through **one** `SimArena`, must reproduce the fresh-allocation
    /// result of every mix bit-for-bit. Each step re-shapes the pooled
    /// engines, cache slabs, and bookkeeping vectors, so any reset
    /// invariant a pooled structure violated would leak the previous
    /// mix's state into this one and diverge.
    #[test]
    fn arena_reuse_matches_fresh_allocation(
        mixes in collection::vec(
            (mix_strategy(1..5), 0usize..6, 1_000u64..4_000, 2u32..6),
            2..5,
        ),
    ) {
        let mut arena = mppm_sim::SimArena::new();
        let mut out = MixResult::default();
        for (step, (raw, llc_sel, interval_insns, intervals)) in mixes.iter().enumerate() {
            let specs = build_specs(raw);
            let refs: Vec<&BenchmarkSpec> = specs.iter().collect();
            let machine = MachineConfig::baseline().with_llc(llc_configs()[*llc_sel]);
            let geometry = build_geometry(*interval_insns, *intervals);
            let fresh = MixSim::new(&refs, &machine, geometry).run();
            MixSim::new(&refs, &machine, geometry).arena(&mut arena).run_into(&mut out);
            for core in 0..refs.len() {
                prop_assert_eq!(
                    fresh.cpi_mc[core].to_bits(),
                    out.cpi_mc[core].to_bits(),
                    "step {}: core {} CPI diverged through the arena: {} vs {}",
                    step,
                    core,
                    fresh.cpi_mc[core],
                    out.cpi_mc[core]
                );
            }
            prop_assert_eq!(&fresh, &out, "step {}: arena run diverged", step);
        }
    }

    /// Everything at once: heterogeneous factors, finite bandwidth, and a
    /// variable warmup, through both schedulers.
    #[test]
    fn combined_axes_match_reference(
        raw in mix_strategy(2..4),
        factors in collection::vec(0.5f64..2.0, 3),
        bandwidth in 0.05f64..0.5,
        warmup in 0u32..3,
        interval_insns in 1_000u64..4_000,
        intervals in 2u32..6,
    ) {
        let specs = build_specs(&raw);
        let machine = MachineConfig::baseline().with_mem_bandwidth(bandwidth);
        let geometry = build_geometry(interval_insns, intervals);
        let opts = MixOptions {
            warmup_passes: warmup,
            core_factors: Some(&factors[..specs.len()]),
            ..MixOptions::default()
        };
        assert_schedulers_agree(&specs, &machine, geometry, &opts);
    }
}
