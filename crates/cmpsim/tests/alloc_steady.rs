//! Counting-allocator proof of the allocation-free steady state.
//!
//! This binary installs a `#[global_allocator]` that reports every heap
//! allocation to `mppm_obs::alloc` (the library side is `forbid(unsafe)`,
//! so the unsafe `GlobalAlloc` shim lives here), then drives warm
//! [`SimArena`] runs and asserts the per-mix allocation delta is exactly
//! zero. Combined with the bit-exactness oracle this rules out cross-mix
//! state leaks: a run that allocates nothing and matches a fresh run
//! byte-for-byte cannot have been influenced by stale arena state.
//!
//! Kept to a single `#[test]` so no concurrent test's allocations can
//! pollute the measured windows.

use mppm_sim::{MachineConfig, MixResult, MixSim, SimArena};
use mppm_trace::{suite, TraceGeometry};
use std::alloc::{GlobalAlloc, Layout, System};

struct CountingAllocator;

// SAFETY: delegates every operation to `System` unchanged; the added
// tally is a pair of relaxed atomic adds, which never allocate and so
// cannot re-enter the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        mppm_obs::alloc::note_alloc(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        mppm_obs::alloc::note_alloc(layout.size() as u64);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        mppm_obs::alloc::note_alloc(new_size as u64);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Runs `mixes` through the warm arena and returns the allocation count
/// observed across them.
fn allocs_for<F: FnMut()>(mut mixes: F) -> u64 {
    let before = mppm_obs::alloc::snapshot();
    mixes();
    mppm_obs::alloc::snapshot().since(before).allocs
}

#[test]
fn warm_arena_mixes_allocate_nothing() {
    let m = MachineConfig::baseline();
    let g = TraceGeometry::tiny();
    let gamess = suite::benchmark("gamess").unwrap();
    let lbm = suite::benchmark("lbm").unwrap();
    let mcf = suite::benchmark("mcf").unwrap();
    let specs = [gamess, lbm, mcf];

    let fresh = MixSim::new(&specs, &m, g).run();

    let mut arena = SimArena::new();
    let mut out = MixResult::default();
    // Mix 1 of the "shard" warms the arena (compiles traces, sizes every
    // pool); it is expected — and measured — to allocate.
    let warmup_allocs =
        allocs_for(|| MixSim::new(&specs, &m, g).arena(&mut arena).run_into(&mut out));
    assert!(warmup_allocs > 0, "the cold first mix must size the pools");
    assert_eq!(fresh, out, "arena warm-up run must match the fresh run");

    // Every later same-shape mix must be allocation-free, end to end.
    for i in 0..4 {
        let steady =
            allocs_for(|| MixSim::new(&specs, &m, g).arena(&mut arena).run_into(&mut out));
        assert_eq!(steady, 0, "steady-state mix {i} allocated {steady} times");
        assert_eq!(fresh, out, "steady-state mix {i} diverged");
    }

    // A partitioned shard re-shapes the LLC into per-core slices: one
    // warm-up, then allocation-free again.
    let pair = [gamess, lbm];
    let fresh_part = MixSim::new(&pair, &m, g).partitioned(&[6, 2]).run();
    let reshape = allocs_for(|| {
        MixSim::new(&pair, &m, g).partitioned(&[6, 2]).arena(&mut arena).run_into(&mut out)
    });
    assert!(reshape > 0, "re-shaping to partitioned slices sizes new slabs");
    assert_eq!(fresh_part, out);
    for i in 0..3 {
        let steady = allocs_for(|| {
            MixSim::new(&pair, &m, g).partitioned(&[6, 2]).arena(&mut arena).run_into(&mut out)
        });
        assert_eq!(steady, 0, "steady-state partitioned mix {i} allocated {steady} times");
        assert_eq!(fresh_part, out, "steady-state partitioned mix {i} diverged");
    }

    // The `sim.alloc.*` counters publish the same proof through the
    // observability layer: warm-arena mixes add zero. (The span's own
    // end-of-run event publishing allocates, but that happens after the
    // per-mix delta is captured, so the counter stays exact.)
    let observer = mppm_obs::Observer::new(Box::new(mppm_obs::NoopSink));
    {
        let root = observer.root("alloc-steady");
        for _ in 0..2 {
            MixSim::new(&pair, &m, g)
                .partitioned(&[6, 2])
                .observer(&root)
                .arena(&mut arena)
                .run_into(&mut out);
        }
    }
    let snapshot = observer.counter_snapshot();
    let get = |name: &str| snapshot.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    assert_eq!(get("sim.alloc.count"), Some(0), "warm mixes publish a zero alloc count");
    assert_eq!(get("sim.alloc.bytes"), Some(0));
    assert_eq!(get("sim.mixes"), Some(2));
}
