//! Offline stand-in for `serde_derive`.
//!
//! Derives the shim `serde::Serialize` / `serde::Deserialize` traits
//! (Value-tree based, see the sibling `serde` crate) for the container
//! shapes this workspace actually uses:
//!
//! * structs with named fields (no generics), honoring `#[serde(default)]`
//!   on fields;
//! * enums whose variants are all units (serialized as the variant name).
//!
//! Parsing is done directly over the `proc_macro` token stream — `syn`
//! and `quote` are not available offline. Unsupported shapes panic at
//! compile time with a clear message rather than mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<String>),
}

struct Container {
    name: String,
    body: Body,
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    let out = match &c.body {
        Body::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})),",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                c.name,
                entries.join("\n")
            )
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{0}::{1} => ::serde::Value::String(::std::string::String::from(\"{1}\")),",
                        c.name, v
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                c.name,
                arms.join("\n")
            )
        }
    };
    out.parse().expect("generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    let out = match &c.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let helper = if f.default { "de_field_default" } else { "de_field" };
                    format!(
                        "{0}: ::serde::__private::{1}(v, \"{2}\", \"{0}\")?,",
                        f.name, helper, c.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {0} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if v.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::DeError::expected(\"object for {0}\", v));\n\
                         }}\n\
                         ::std::result::Result::Ok(Self {{ {1} }})\n\
                     }}\n\
                 }}",
                c.name,
                inits.join("\n")
            )
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some(\"{1}\") => ::std::result::Result::Ok({0}::{1}),",
                        c.name, v
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {0} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v.as_str() {{\n\
                             {1}\n\
                             ::std::option::Option::Some(other) => ::std::result::Result::Err(\
                                 ::serde::DeError(::std::format!(\"unknown {0} variant {{other}}\"))),\n\
                             ::std::option::Option::None => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"string for {0}\", v)),\n\
                         }}\n\
                     }}\n\
                 }}",
                c.name,
                arms.join("\n")
            )
        }
    };
    out.parse().expect("generated Deserialize impl parses")
}

fn parse_container(input: TokenStream) -> Container {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility to reach `struct` / `enum`.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _attr = tokens.next(); // bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(other) => panic!("serde shim derive: unexpected token {other}"),
            None => panic!("serde shim derive: no struct or enum found"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected container name, got {other:?}"),
    };
    let body_group = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive: tuple struct {name} is unsupported")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde shim derive: generic container {name} is unsupported")
            }
            Some(_) => continue, // e.g. `where`-less trailing tokens
            None => panic!("serde shim derive: {name} has no body"),
        }
    };
    let body = if kind == "struct" {
        Body::Struct(parse_fields(body_group.stream()))
    } else {
        Body::Enum(parse_variants(body_group.stream()))
    };
    Container { name, body }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Field attributes: only `#[serde(default)]` is meaningful.
        let mut default = false;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.next() {
                        let text = g.stream().to_string();
                        if text.contains("serde") && text.contains("default") {
                            default = true;
                        }
                    }
                }
                _ => break,
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.peek() {
            if id.to_string() == "pub" {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(field_name) = tok else {
            panic!("serde shim derive: expected field name, got {tok}");
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth: i32 = 0;
        for tok in tokens.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name: field_name.to_string(), default });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes (doc comments on variants).
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(variant) = tok else {
            panic!("serde shim derive: expected variant name, got {tok}");
        };
        match tokens.next() {
            None => {
                variants.push(variant.to_string());
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(variant.to_string());
            }
            Some(other) => panic!(
                "serde shim derive: variant {variant} is not a unit variant ({other})"
            ),
        }
    }
    variants
}
