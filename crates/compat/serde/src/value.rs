//! The JSON-shaped data model shared by the serde and serde_json shims.

/// A JSON-like value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a hash map) so
/// serialization is byte-stable.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or explicitly signed integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Numeric wrapper kept for API-shape compatibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(pub f64);

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Whether this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Mutable object field lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(entries) => {
                entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as an `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object entries.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Like `serde_json`, a non-negative integer compares equal whether it was
/// built from a signed or an unsigned type; integers and floats stay
/// distinct (floats compare by bits via `f64::eq`, so bit-exactness is
/// preserved and `NaN != NaN` as usual).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::UInt(a), Value::UInt(b)) => a == b,
            (Value::Int(a), Value::UInt(b)) | (Value::UInt(b), Value::Int(a)) => {
                u64::try_from(*a).is_ok_and(|a| a == *b)
            }
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Inserts the key with `Null` if absent, as `serde_json` does.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an object.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let Value::Object(entries) = self else {
            panic!("cannot index {} with a string key", self.kind());
        };
        if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
            return &mut entries[pos].1;
        }
        entries.push((key.to_string(), Value::Null));
        &mut entries.last_mut().expect("just pushed").1
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => &items[idx],
            other => panic!("cannot index {} with a usize", other.kind()),
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(items) => &mut items[idx],
            other => panic!("cannot index {} with a usize", other.kind()),
        }
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Float(f64::from(f))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self { Value::UInt(n as u64) }
        }
    )*};
}
from_uint!(u8, u16, u32, u64, usize);

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self { Value::Int(n as i64) }
        }
    )*};
}
from_int!(i8, i16, i32, i64, isize);
