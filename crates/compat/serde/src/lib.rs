//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based zero-copy data model, this shim uses a
//! simple owned [`Value`] tree (the JSON data model): [`Serialize`] turns a
//! type into a `Value`, [`Deserialize`] reads it back. The sibling
//! `serde_json` shim serializes `Value` to JSON text and back, and the
//! `serde_derive` shim derives both traits for plain named-field structs
//! and unit-variant enums — exactly the shapes this workspace stores.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Number, Value};

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Error for a type mismatch at a known location.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization helpers module, mirroring `serde::de`.
pub mod de {
    pub use crate::DeError;

    /// Marker for owned deserialization; every [`crate::Deserialize`]
    /// qualifies (this shim has no borrowed variant).
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::expected("f32", v))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, S: std::hash::BuildHasher> Serialize for std::collections::HashMap<String, T, S> {
    fn to_value(&self) -> Value {
        // Sorted keys so serialized maps are byte-stable across runs.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(keys.into_iter().map(|k| (k.clone(), self[k].to_value())).collect())
    }
}

impl<T: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, T, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), T::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::BTreeMap<String, T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), T::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Support plumbing for the derive macros; not public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Shared null for "field missing" lookups.
    pub static NULL: Value = Value::Null;

    /// Looks up a struct field, treating a missing key as JSON null (so
    /// `Option` fields default to `None`, as with real serde).
    pub fn field<'v>(v: &'v Value, name: &str) -> &'v Value {
        v.get(name).unwrap_or(&NULL)
    }

    /// Deserializes one struct field with error context.
    pub fn de_field<T: Deserialize>(
        v: &Value,
        ty: &str,
        name: &str,
    ) -> Result<T, DeError> {
        T::from_value(field(v, name))
            .map_err(|e| DeError(format!("{ty}.{name}: {}", e.0)))
    }

    /// Deserializes a `#[serde(default)]` field: missing or null uses the
    /// type's `Default`.
    pub fn de_field_default<T: Deserialize + Default>(
        v: &Value,
        ty: &str,
        name: &str,
    ) -> Result<T, DeError> {
        match v.get(name) {
            Some(val) if !matches!(val, Value::Null) => T::from_value(val)
                .map_err(|e| DeError(format!("{ty}.{name}: {}", e.0))),
            _ => Ok(T::default()),
        }
    }
}
