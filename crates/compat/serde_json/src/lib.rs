//! Offline stand-in for `serde_json`, built on the serde shim's [`Value`]
//! data model: a complete JSON writer/parser for the subset of JSON the
//! workspace produces (finite numbers, UTF-8 strings, arrays, objects).
//!
//! Floats are written with Rust's shortest-round-trip formatting, so a
//! serialize → parse round trip reproduces every `f64` bit-exactly —
//! the property the experiment store and the golden-snapshot tests rely
//! on. Non-finite floats serialize as `null`, as the real crate does.

pub use serde::Value;
use serde::{DeError, Serialize};

/// Error from serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs a type from a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

/// Serializes to a JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes to JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses a type from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses a type from JSON bytes.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from a literal, mirroring `serde_json::json!`.
///
/// Shim limitation: inside `[...]`/`{...}` literals an element must be a
/// single token tree, so write negative numbers parenthesized: `[(-3)]`.
/// Top-level `json!(-3)` works unparenthesized.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($elem)),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $(($key.to_string(), $crate::json!($val))),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..indent + 1 {
                    out.push_str("  ");
                }
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str("  ");
            }
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..indent + 1 {
                    out.push_str("  ");
                }
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, indent + 1);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str("  ");
            }
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest representation that round-trips exactly;
    // it always contains '.' or 'e' so the value re-parses as a float.
    let s = format!("{f:?}");
    out.push_str(&s);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii number text");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_round_trip_is_bit_exact() {
        for f in [0.1, 1.0, -3.25e-17, 1e300, f64::MIN_POSITIVE, 123456789.123456789] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {s} -> {back}");
        }
    }

    #[test]
    fn integers_stay_integers() {
        let v: Value = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v: Value = parse("-42").unwrap();
        assert_eq!(v.as_i64(), Some(-42));
    }

    #[test]
    fn containers_round_trip() {
        let v = json!({
            "name": "mix",
            "vals": [1.5, 2, (-3)],
            "flag": true,
            "none": null
        });
        let s = to_string(&v).unwrap();
        let back: Value = parse(&s).unwrap();
        assert_eq!(v, back);
        assert_eq!(back["vals"][0].as_f64(), Some(1.5));
        assert_eq!(back["name"].as_str(), Some("mix"));
    }

    #[test]
    fn string_escapes() {
        let original = "line\nquote\"slash\\tab\tunicode\u{1F600}ctrl\u{1}";
        let s = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(original, back);
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({"a": [1, 2], "b": {"c": 0.5}});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = parse(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
