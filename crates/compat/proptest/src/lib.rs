//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro
//! (with optional `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, range and tuple strategies,
//! [`Strategy::prop_map`], [`collection::vec`] and [`Just`].
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! name) instead of an entropy seed, and failing inputs are *not* shrunk —
//! the panic message reports the raw failing values instead. Both choices
//! keep CI runs reproducible without a persistence file.

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A recipe for generating random values of [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{SampleRange, SmallRng, Strategy};

    /// Inclusive-exclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = (self.size.lo..self.size.hi).sample_single(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the generated test bodies.
pub mod test_runner {
    use super::{SeedableRng, SmallRng};

    /// Deterministic per-test generator derived from the test's name.
    pub fn rng_for(test_path: &str) -> SmallRng {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        SmallRng::seed_from_u64(h)
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = test_runner::rng_for("sizes");
        let s = collection::vec(0u32..10, 3..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = collection::vec(0u32..10, 4);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = test_runner::rng_for("compose");
        let s = (0u32..10, 0.0f64..1.0).prop_map(|(a, b)| a as f64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((0.0..10.0).contains(&v));
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: generated args satisfy their strategies.
        #[test]
        fn macro_generates_in_range(x in 1u64..100, xs in collection::vec(0i32..5, 0..4)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(xs.len() < 4);
        }
    }
}
