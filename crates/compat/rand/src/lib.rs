//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the external dependencies are replaced by small local crates exposing
//! exactly the API subset the workspace uses. This one covers `rand` 0.8:
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64, the same
//! generator family the real crate uses on 64-bit targets), the
//! [`SeedableRng::seed_from_u64`] constructor, and the [`Rng`] methods
//! `gen`, `gen_range` and `gen_bool`.
//!
//! Sequences are deterministic per seed but are not guaranteed to match
//! the real crate bit for bit; everything in this workspace that depends
//! on RNG sequences (trace streams, mix sampling, golden snapshots) is
//! generated and checked against *this* implementation.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a uniformly distributed value of `Self`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire, no rejection):
                // bias is < span / 2^64, far below anything observable here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64) + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as u64).wrapping_add(hi) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing generation methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real crate does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(5u64..=6);
            assert!(v == 5 || v == 6);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let ratio = hits as f64 / 20_000.0;
        assert!((ratio - 0.3).abs() < 0.02, "ratio {ratio}");
    }
}
