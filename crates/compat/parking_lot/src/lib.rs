//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` returns
//! the guard directly (no `Result`), and a poisoned std mutex is recovered
//! rather than propagated — parking_lot has no poisoning at all.

use std::sync::TryLockError;

pub use std::sync::MutexGuard;
pub use std::sync::RwLockReadGuard;
pub use std::sync::RwLockWriteGuard;

/// Mutual exclusion lock with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock with parking_lot's panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
