//! Offline stand-in for the `bytes` crate: the [`Buf`]/[`BufMut`] trait
//! surface this workspace's binary trace codec uses, implemented for
//! `&[u8]` (reading, cursor advanced by re-slicing) and `Vec<u8>`
//! (writing, appended at the tail).

/// Read-side cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances past them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a little-endian `u32` and advances 4 bytes.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64` and advances 8 bytes.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads one byte and advances past it.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write-side sink for bytes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_words() {
        let mut out = Vec::new();
        out.put_slice(b"MAGC");
        out.put_u32_le(7);
        out.put_u64_le(0xDEAD_BEEF_0000_0001);
        out.put_u8(0xFF);

        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 17);
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"MAGC");
        assert_eq!(buf.get_u32_le(), 7);
        assert_eq!(buf.get_u64_le(), 0xDEAD_BEEF_0000_0001);
        assert_eq!(buf.get_u8(), 0xFF);
        assert!(!buf.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u32_le();
    }
}
