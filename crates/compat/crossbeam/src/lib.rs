//! Offline stand-in for `crossbeam`'s scoped threads, backed by
//! `std::thread::scope`.
//!
//! Only the `crossbeam::scope` / `Scope::spawn` shape used by this
//! workspace is provided. Closure signatures match crossbeam: the spawned
//! closure receives `&Scope` (commonly ignored as `|_|`), and `scope`
//! returns `thread::Result<R>` — `Ok` unless a spawned thread panicked.
//! Panic detection rides on `std::thread::scope`, which itself panics
//! after joining if any unjoined spawned thread panicked; the outer
//! `catch_unwind` converts that into crossbeam's `Err`.

use std::marker::PhantomData;

pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
    /// Result alias matching `crossbeam::thread::Result`.
    pub type Result<T> = std::thread::Result<T>;
}

/// A scope handle passed to spawned closures, mirroring
/// `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    _marker: PhantomData<&'scope ()>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives this scope, so nested
    /// spawns are possible; most callers ignore it (`|_| ...`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        let inner = self.inner.spawn(move || f(&Scope { inner: inner_scope }));
        ScopedJoinHandle { inner, _marker: PhantomData }
    }
}

/// Creates a scope in which threads borrowing the environment can be
/// spawned; all are joined before this returns. Returns `Err` with a panic
/// payload if any unjoined spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        let result = scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::SeqCst);
                });
            }
        });
        assert!(result.is_ok());
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 10);
    }

    #[test]
    fn join_returns_value() {
        let r = scope(|s| {
            let h = s.spawn(|_| 7 * 6);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn panic_in_thread_reported_as_err() {
        // Quiet the default panic hook for this expected panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        std::panic::set_hook(prev);
        assert!(r.is_err());
    }
}
