//! Offline stand-in for `criterion`: the macro and builder surface this
//! workspace's benches use, backed by a simple warm-up + timed-samples
//! harness. Reports median and mean per-iteration time (and throughput
//! when set) to stdout. No HTML reports, no statistics beyond the basics —
//! enough to compare kernels on the same machine in the same process.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings and entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up window run before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement window split across samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the number of samples taken per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, id, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    /// No-op finalizer matching criterion's API.
    pub fn final_summary(&mut self) {}
}

/// Throughput annotation: per-iteration elements or bytes processed.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report a rate alongside times.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        run_bench(self.criterion, &id, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        run_bench(self.criterion, &id, self.throughput, |b| f(b, input));
        self
    }

    /// Closes the group (reporting is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    mode: BencherMode,
}

enum BencherMode {
    /// Warm-up / calibration: count iterations that fit in a window.
    Calibrate { deadline: Instant, iters: u64 },
    /// Measurement: run a fixed number of iterations and record the time.
    Measure { target_iters: u64, elapsed: Duration },
}

impl Bencher {
    /// Times the routine; criterion's core entry point.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &mut self.mode {
            BencherMode::Calibrate { deadline, iters } => loop {
                black_box(routine());
                *iters += 1;
                if Instant::now() >= *deadline {
                    break;
                }
            },
            BencherMode::Measure { target_iters, elapsed } => {
                let start = Instant::now();
                for _ in 0..*target_iters {
                    black_box(routine());
                }
                *elapsed = start.elapsed();
            }
        }
    }

    /// Times a routine taking per-iteration owned input built by `setup`
    /// (setup time excluded is an approximation: measured inline here).
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        self.iter(|| routine(setup()));
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up doubles as calibration: how many iterations fit the window?
    let mut bencher = Bencher {
        mode: BencherMode::Calibrate {
            deadline: Instant::now() + criterion.warm_up_time,
            iters: 0,
        },
    };
    let warm_start = Instant::now();
    f(&mut bencher);
    let warm_elapsed = warm_start.elapsed();
    let BencherMode::Calibrate { iters: warm_iters, .. } = bencher.mode else {
        unreachable!()
    };
    let warm_iters = warm_iters.max(1);
    let per_iter = warm_elapsed.as_secs_f64() / warm_iters as f64;

    // Split the measurement window into `sample_size` equal samples.
    let samples = criterion.sample_size;
    let window = criterion.measurement_time.as_secs_f64() / samples as f64;
    let target_iters = ((window / per_iter.max(1e-12)) as u64).max(1);

    let mut per_iter_times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            mode: BencherMode::Measure { target_iters, elapsed: Duration::ZERO },
        };
        f(&mut bencher);
        let BencherMode::Measure { elapsed, .. } = bencher.mode else {
            unreachable!()
        };
        per_iter_times.push(elapsed.as_secs_f64() / target_iters as f64);
    }
    per_iter_times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = per_iter_times[samples / 2];
    let mean = per_iter_times.iter().sum::<f64>() / samples as f64;

    let mut line = format!(
        "{id:<48} median {:>12}  mean {:>12}  ({} samples x {} iters)",
        format_time(median),
        format_time(mean),
        samples,
        target_iters
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 / median;
        line.push_str(&format!("  {:.3e} {unit}/s", rate));
    }
    println!("{line}");
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} us", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group; supports both the simple and the
/// `name = ...; config = ...; targets = ...` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3)
    }

    #[test]
    fn bench_function_runs() {
        let mut c = quick();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_with_throughput_and_input() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
