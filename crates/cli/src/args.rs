//! Hand-rolled argument parsing for the CLI (kept dependency-free).

use std::fmt;

/// Which contention model a prediction uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentionKind {
    /// Frequency-of-access (the paper's choice).
    Foa,
    /// Stack-distance competition.
    SdcCompetition,
    /// Simplified inductive probability.
    Prob,
    /// Static way partition with the given allocation.
    Partition(Vec<u32>),
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Show the benchmark suite with isolated-profile statistics.
    List {
        /// Table 2 LLC config, 0-based.
        config: usize,
        /// Smoke-test geometry instead of full traces.
        quick: bool,
    },
    /// Predict a mix analytically.
    Predict {
        /// Benchmark names, one per core.
        mix: Vec<String>,
        config: usize,
        quick: bool,
        contention: ContentionKind,
        /// Shared memory bandwidth (accesses/cycle), if limited.
        bandwidth: Option<f64>,
    },
    /// Run the detailed simulator on a mix and compare with the model.
    Simulate {
        /// Benchmark names, one per core.
        mix: Vec<String>,
        config: usize,
        quick: bool,
    },
    /// Print how many distinct mixes exist for `cores` programs.
    Count {
        /// Programs per mix.
        cores: usize,
    },
    /// Record one trace pass of a benchmark to a binary file.
    Record {
        /// Benchmark name.
        benchmark: String,
        /// Output path.
        out: String,
        quick: bool,
    },
    /// Run a design-space exploration campaign over the mix space.
    Campaign {
        /// Programs per mix.
        cores: usize,
        /// Table 2 LLC configs, 0-based.
        configs: Vec<usize>,
        /// Stratified sample size; `None` enumerates the full space.
        sample: Option<usize>,
        /// Sample seed (ignored without `sample`).
        seed: u64,
        /// Mixes per checkpoint shard.
        shard_size: usize,
        /// Random subsets per ranking-stability point.
        trials: usize,
        quick: bool,
        /// JSONL event-trace output path, if requested.
        trace: Option<String>,
        /// Mirror campaign milestones to stderr.
        progress: bool,
        /// Worker processes to fan shards out to (0 = in-process).
        workers: usize,
        /// Shard-journal directory override (default: inside the store).
        journal: Option<String>,
    },
    /// Run the `mppmd` daemon in the foreground.
    Serve {
        /// Socket path override (default `$TMPDIR/mppmd.sock`).
        socket: Option<String>,
        /// Store root override (default `target/mppm-store`).
        store: Option<String>,
    },
    /// Send one request to a running `mppmd` daemon.
    Client {
        /// Socket path override (default `$TMPDIR/mppmd.sock`).
        socket: Option<String>,
        /// The wire request to send (kind + parameters).
        request: mppm_server::protocol::Request,
    },
    /// Run the determinism lint pass over the workspace sources.
    Lint {
        /// Exit non-zero on any violation (the CI gate).
        deny: bool,
        /// Machine-readable report.
        json: bool,
        /// Report only these rules (empty = all).
        only: Vec<String>,
        /// Drop these rules from the report.
        exclude: Vec<String>,
    },
    /// Show usage.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
mppm-cli — the Multi-Program Performance Model toolkit

USAGE:
  mppm-cli list [--config N] [--quick]
  mppm-cli predict <bench,bench,...> [--config N] [--quick]
              [--contention foa|sdc|prob] [--partition w1,w2,...]
              [--bandwidth ACC_PER_CYCLE]
  mppm-cli simulate <bench,bench,...> [--config N] [--quick]
  mppm-cli count <cores>
  mppm-cli record <bench> --out FILE [--quick]
  mppm-cli campaign [--cores N] [--configs A,B,...] [--sample N] [--seed S]
              [--shard-size N] [--trials N] [--quick]
              [--workers N] [--journal DIR]
              [--trace FILE] [--progress]
  mppm-cli serve [--socket PATH] [--store DIR]
  mppm-cli client ping|stats|shutdown [--socket PATH]
  mppm-cli client predict|simulate <bench,...> [--config N] [--quick]
              [--contention foa|sdc|prob] [--partition w1,w2,...]
              [--bandwidth B] [--subscribe] [--socket PATH]
  mppm-cli client campaign [--cores N] [--configs A,B,...] [--sample N]
              [--seed S] [--shard-size N] [--trials N] [--quick]
              [--subscribe] [--socket PATH]
  mppm-cli lint [--deny] [--json] [--only RULE[,RULE]]
              [--exclude RULE[,RULE]]
  mppm-cli help

Benchmarks are the 29 synthetic SPEC CPU2006 stand-ins (see `list`).
--config selects the Table 2 LLC configuration 1..6 (default 1).
--quick uses short traces for instant results.
`campaign` sweeps every mix (or a seeded stratified --sample) over each
--configs design point, checkpointing shards so a killed run resumes;
--workers N fans shards out to N worker processes sharing one journal
(the result is byte-identical for any worker count), --journal DIR
overrides where shards checkpoint, --trace writes a deterministic JSONL
event trace and --progress mirrors milestones to stderr.
`lint` runs the mppm-analyze determinism rules over the workspace's own
sources; --deny makes violations fatal (the CI gate), and --only /
--exclude (repeatable, comma-separable) narrow the report to named
rules — unknown rule names are usage errors.
`serve` runs the long-lived `mppmd` daemon (warm caches, request
batching); `client` sends it one request — results are byte-identical
to the one-shot commands, repeats are answered from the warm cache, and
--subscribe streams progress events.";

fn parse_config(value: &str) -> Result<usize, ParseError> {
    let n: usize = value
        .parse()
        .map_err(|_| ParseError(format!("--config expects a number 1..6, got `{value}`")))?;
    if !(1..=6).contains(&n) {
        return Err(ParseError(format!("--config must be 1..6, got {n}")));
    }
    Ok(n - 1)
}

fn parse_mix(value: &str) -> Result<Vec<String>, ParseError> {
    let mix: Vec<String> =
        value.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
    if mix.is_empty() {
        return Err(ParseError("mix must contain at least one benchmark".into()));
    }
    Ok(mix)
}

/// Parses an argv (excluding the program name) into a [`Command`].
///
/// # Errors
///
/// Returns [`ParseError`] with a user-facing message for anything
/// malformed.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter().map(String::as_str).peekable();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };

    // Collect flags generically: `--name value` or bare `--quick`.
    let rest: Vec<&str> = it.collect();
    let mut positional = Vec::new();
    let mut flags: Vec<(&str, Option<&str>)> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let a = rest[i];
        if let Some(name) = a.strip_prefix("--") {
            if name == "quick"
                || name == "deny"
                || name == "json"
                || name == "progress"
                || name == "subscribe"
            {
                flags.push((name, None));
                i += 1;
            } else {
                let value = rest
                    .get(i + 1)
                    .ok_or_else(|| ParseError(format!("--{name} expects a value")))?;
                flags.push((name, Some(value)));
                i += 2;
            }
        } else {
            positional.push(a);
            i += 1;
        }
    }
    let flag = |name: &str| flags.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
    let quick = flag("quick").is_some();
    let config = match flag("config") {
        Some(Some(v)) => parse_config(v)?,
        _ => 0,
    };
    let known_flags: &[&str] = match cmd {
        "predict" => &["quick", "config", "contention", "partition", "bandwidth"],
        "list" | "simulate" => &["quick", "config"],
        "record" => &["quick", "out"],
        "campaign" => &[
            "quick", "cores", "configs", "sample", "seed", "shard-size", "trials", "trace",
            "progress", "workers", "journal",
        ],
        "lint" => &["deny", "json", "only", "exclude"],
        "serve" => &["socket", "store"],
        "client" => &[
            "socket", "quick", "config", "contention", "partition", "bandwidth", "cores",
            "configs", "sample", "seed", "shard-size", "trials", "subscribe",
        ],
        _ => &[],
    };
    for (name, _) in &flags {
        if !known_flags.contains(name) {
            return Err(ParseError(format!("unknown flag --{name} for `{cmd}`")));
        }
    }

    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List { config, quick }),
        "count" => {
            let cores = positional
                .first()
                .ok_or_else(|| ParseError("count expects the number of cores".into()))?;
            let cores: usize = cores
                .parse()
                .map_err(|_| ParseError(format!("count expects a number, got `{cores}`")))?;
            if cores == 0 {
                return Err(ParseError("count expects at least one core".into()));
            }
            Ok(Command::Count { cores })
        }
        "predict" => {
            let mix = parse_mix(
                positional.first().ok_or_else(|| ParseError("predict expects a mix".into()))?,
            )?;
            let contention = match (flag("contention"), flag("partition")) {
                (Some(_), Some(_)) => {
                    return Err(ParseError(
                        "--contention and --partition are mutually exclusive".into(),
                    ))
                }
                (None, None) => ContentionKind::Foa,
                (Some(Some("foa")), None) => ContentionKind::Foa,
                (Some(Some("sdc")), None) => ContentionKind::SdcCompetition,
                (Some(Some("prob")), None) => ContentionKind::Prob,
                (Some(Some(other)), None) => {
                    return Err(ParseError(format!(
                        "unknown contention model `{other}` (foa|sdc|prob)"
                    )))
                }
                (Some(None), _) | (None, Some(None)) => {
                    return Err(ParseError("missing flag value".into()))
                }
                (None, Some(Some(spec))) => {
                    let ways: Result<Vec<u32>, _> =
                        spec.split(',').map(|w| w.trim().parse::<u32>()).collect();
                    let ways = ways.map_err(|_| {
                        ParseError(format!("--partition expects way counts, got `{spec}`"))
                    })?;
                    if ways.len() != mix.len() {
                        return Err(ParseError(format!(
                            "--partition needs one way count per program ({} vs {})",
                            ways.len(),
                            mix.len()
                        )));
                    }
                    ContentionKind::Partition(ways)
                }
            };
            let bandwidth = match flag("bandwidth") {
                Some(Some(v)) => Some(v.parse::<f64>().map_err(|_| {
                    ParseError(format!("--bandwidth expects a number, got `{v}`"))
                })?),
                _ => None,
            };
            Ok(Command::Predict { mix, config, quick, contention, bandwidth })
        }
        "simulate" => {
            let mix = parse_mix(
                positional.first().ok_or_else(|| ParseError("simulate expects a mix".into()))?,
            )?;
            Ok(Command::Simulate { mix, config, quick })
        }
        "lint" => {
            // `--only` / `--exclude` are repeatable and comma-separable;
            // rule names are validated here so typos exit 2 like any
            // other usage error.
            let collect = |name: &str| -> Vec<String> {
                flags
                    .iter()
                    .filter(|(n, _)| *n == name)
                    .filter_map(|(_, v)| *v)
                    .flat_map(|v| v.split(','))
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect()
            };
            let only = collect("only");
            let exclude = collect("exclude");
            let known = mppm_analyze::known_rule_names();
            for rule in only.iter().chain(&exclude) {
                if !known.contains(&rule.as_str()) {
                    return Err(ParseError(format!(
                        "unknown rule `{rule}` (known rules: {})",
                        known.join(", ")
                    )));
                }
            }
            Ok(Command::Lint {
                deny: flag("deny").is_some(),
                json: flag("json").is_some(),
                only,
                exclude,
            })
        }
        "serve" => Ok(Command::Serve {
            socket: flag("socket").flatten().map(String::from),
            store: flag("store").flatten().map(String::from),
        }),
        "client" => {
            let verb = *positional
                .first()
                .ok_or_else(|| ParseError("client expects a request kind".into()))?;
            let mut request = mppm_server::protocol::Request::default();
            request.kind = verb.to_string();
            match verb {
                "predict" | "simulate" => {
                    let mix = positional.get(1).ok_or_else(|| {
                        ParseError(format!("client {verb} expects a mix"))
                    })?;
                    parse_mix(mix)?; // syntactic check; the daemon re-validates
                    request.mix = (*mix).to_string();
                }
                "campaign" | "ping" | "stats" | "shutdown" => {}
                other => {
                    return Err(ParseError(format!(
                        "unknown client request `{other}` \
                         (ping|stats|predict|simulate|campaign|shutdown)"
                    )))
                }
            }
            // The wire speaks 1-based configs, like the flags do.
            request.config = (config + 1) as u64;
            request.quick = quick;
            request.subscribe = flag("subscribe").is_some();
            if let Some(Some(v)) = flag("contention") {
                request.contention = v.to_string();
            }
            if let Some(Some(v)) = flag("partition") {
                request.partition = v.to_string();
            }
            if let Some(Some(v)) = flag("bandwidth") {
                request.bandwidth = Some(v.parse::<f64>().map_err(|_| {
                    ParseError(format!("--bandwidth expects a number, got `{v}`"))
                })?);
            }
            if let Some(Some(v)) = flag("configs") {
                request.configs = v.to_string();
            }
            let number = |name: &str| -> Result<u64, ParseError> {
                match flag(name) {
                    Some(Some(v)) => v.parse().map_err(|_| {
                        ParseError(format!("--{name} expects a number, got `{v}`"))
                    }),
                    _ => Ok(0), // 0 = wire default
                }
            };
            request.cores = number("cores")?;
            request.sample = number("sample")?;
            request.seed = number("seed")?;
            request.shard_size = number("shard-size")?;
            request.trials = number("trials")?;
            Ok(Command::Client {
                socket: flag("socket").flatten().map(String::from),
                request,
            })
        }
        "record" => {
            let benchmark = positional
                .first()
                .ok_or_else(|| ParseError("record expects a benchmark name".into()))?
                .to_string();
            let out = match flag("out") {
                Some(Some(v)) => v.to_string(),
                _ => return Err(ParseError("record needs --out FILE".into())),
            };
            Ok(Command::Record { benchmark, out, quick })
        }
        "campaign" => {
            let number = |name: &str, default: u64| -> Result<u64, ParseError> {
                match flag(name) {
                    Some(Some(v)) => v.parse().map_err(|_| {
                        ParseError(format!("--{name} expects a number, got `{v}`"))
                    }),
                    _ => Ok(default),
                }
            };
            let cores = number("cores", 2)? as usize;
            let configs = match flag("configs") {
                Some(Some(list)) => list
                    .split(',')
                    .map(|s| parse_config(s.trim()))
                    .collect::<Result<Vec<usize>, _>>()
                    .map_err(|e| ParseError(format!("--configs: {e}")))?,
                _ => vec![0, 1],
            };
            let sample = match flag("sample") {
                Some(Some(v)) => Some(v.parse::<usize>().map_err(|_| {
                    ParseError(format!("--sample expects a number, got `{v}`"))
                })?),
                _ => None,
            };
            let trace = match flag("trace") {
                Some(Some(v)) => Some(v.to_string()),
                Some(None) => return Err(ParseError("--trace expects a file path".into())),
                None => None,
            };
            let journal = match flag("journal") {
                Some(Some(v)) => Some(v.to_string()),
                Some(None) => return Err(ParseError("--journal expects a directory".into())),
                None => None,
            };
            Ok(Command::Campaign {
                cores,
                configs,
                sample,
                seed: number("seed", 1)?,
                shard_size: number("shard-size", 64)? as usize,
                trials: number("trials", 200)? as usize,
                quick,
                trace,
                progress: flag("progress").is_some(),
                workers: number("workers", 0)? as usize,
                journal,
            })
        }
        other => Err(ParseError(format!("unknown command `{other}`; try `mppm-cli help`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> Command {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn parse_err(args: &[&str]) -> String {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap_err().0
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse_ok(&["help"]), Command::Help);
    }

    fn lint(deny: bool, json: bool, only: &[&str], exclude: &[&str]) -> Command {
        Command::Lint {
            deny,
            json,
            only: only.iter().map(|s| s.to_string()).collect(),
            exclude: exclude.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn lint_flags() {
        assert_eq!(parse_ok(&["lint"]), lint(false, false, &[], &[]));
        assert_eq!(parse_ok(&["lint", "--deny"]), lint(true, false, &[], &[]));
        assert_eq!(parse_ok(&["lint", "--deny", "--json"]), lint(true, true, &[], &[]));
        assert!(parse_err(&["lint", "--quick"]).contains("unknown flag"));
    }

    #[test]
    fn lint_rule_filters() {
        assert_eq!(
            parse_ok(&["lint", "--only", "taint-nondet-to-result"]),
            lint(false, false, &["taint-nondet-to-result"], &[])
        );
        // Repeatable and comma-separable, on both flags.
        assert_eq!(
            parse_ok(&[
                "lint",
                "--only",
                "unwrap-in-lib,lossy-counter-cast",
                "--only",
                "wallclock-in-sim",
                "--exclude",
                "unused-suppression"
            ]),
            lint(
                false,
                false,
                &["unwrap-in-lib", "lossy-counter-cast", "wallclock-in-sim"],
                &["unused-suppression"]
            )
        );
        // Unknown rule names are usage errors (exit 2 in main).
        let err = parse_err(&["lint", "--only", "no-such-rule"]);
        assert!(err.contains("unknown rule `no-such-rule`"), "{err}");
        assert!(err.contains("taint-nondet-to-result"), "lists the known rules: {err}");
        let err = parse_err(&["lint", "--exclude", "nope"]);
        assert!(err.contains("unknown rule `nope`"), "{err}");
    }

    #[test]
    fn list_defaults() {
        assert_eq!(parse_ok(&["list"]), Command::List { config: 0, quick: false });
        assert_eq!(
            parse_ok(&["list", "--config", "3", "--quick"]),
            Command::List { config: 2, quick: true }
        );
    }

    #[test]
    fn config_bounds() {
        assert!(parse_err(&["list", "--config", "0"]).contains("1..6"));
        assert!(parse_err(&["list", "--config", "7"]).contains("1..6"));
        assert!(parse_err(&["list", "--config", "x"]).contains("number"));
    }

    #[test]
    fn predict_mix_and_model() {
        let cmd = parse_ok(&["predict", "gamess,lbm", "--contention", "prob"]);
        assert_eq!(
            cmd,
            Command::Predict {
                mix: vec!["gamess".into(), "lbm".into()],
                config: 0,
                quick: false,
                contention: ContentionKind::Prob,
                bandwidth: None,
            }
        );
    }

    #[test]
    fn predict_partition() {
        let cmd = parse_ok(&["predict", "gamess,lbm", "--partition", "6,2"]);
        match cmd {
            Command::Predict { contention: ContentionKind::Partition(w), .. } => {
                assert_eq!(w, vec![6, 2]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_err(&["predict", "a,b", "--partition", "6"]).contains("one way count"));
        assert!(parse_err(&["predict", "a,b", "--partition", "6,2", "--contention", "foa"])
            .contains("mutually exclusive"));
    }

    #[test]
    fn predict_bandwidth() {
        let cmd = parse_ok(&["predict", "lbm,mcf", "--bandwidth", "0.05"]);
        match cmd {
            Command::Predict { bandwidth, .. } => assert_eq!(bandwidth, Some(0.05)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_parses() {
        assert_eq!(parse_ok(&["count", "4"]), Command::Count { cores: 4 });
        assert!(parse_err(&["count"]).contains("expects"));
        assert!(parse_err(&["count", "0"]).contains("at least one"));
    }

    #[test]
    fn record_needs_out() {
        assert_eq!(
            parse_ok(&["record", "gcc", "--out", "/tmp/gcc.trace"]),
            Command::Record { benchmark: "gcc".into(), out: "/tmp/gcc.trace".into(), quick: false }
        );
        assert!(parse_err(&["record", "gcc"]).contains("--out"));
    }

    #[test]
    fn campaign_defaults_and_flags() {
        assert_eq!(
            parse_ok(&["campaign"]),
            Command::Campaign {
                cores: 2,
                configs: vec![0, 1],
                sample: None,
                seed: 1,
                shard_size: 64,
                trials: 200,
                quick: false,
                trace: None,
                progress: false,
                workers: 0,
                journal: None,
            }
        );
        assert_eq!(
            parse_ok(&[
                "campaign", "--quick", "--cores", "4", "--configs", "1,3,6", "--sample", "500",
                "--seed", "9", "--shard-size", "32", "--trials", "100", "--trace",
                "/tmp/t.jsonl", "--progress", "--workers", "4", "--journal", "/tmp/j",
            ]),
            Command::Campaign {
                cores: 4,
                configs: vec![0, 2, 5],
                sample: Some(500),
                seed: 9,
                shard_size: 32,
                trials: 100,
                quick: true,
                trace: Some("/tmp/t.jsonl".into()),
                progress: true,
                workers: 4,
                journal: Some("/tmp/j".into()),
            }
        );
        assert!(parse_err(&["campaign", "--configs", "0,1"]).contains("1..6"));
        assert!(parse_err(&["campaign", "--sample", "lots"]).contains("number"));
        assert!(parse_err(&["predict", "a,b", "--trace", "x"]).contains("unknown flag"));
    }

    #[test]
    fn serve_parses_overrides() {
        assert_eq!(parse_ok(&["serve"]), Command::Serve { socket: None, store: None });
        assert_eq!(
            parse_ok(&["serve", "--socket", "/tmp/d.sock", "--store", "/tmp/store"]),
            Command::Serve {
                socket: Some("/tmp/d.sock".into()),
                store: Some("/tmp/store".into())
            }
        );
        assert!(parse_err(&["serve", "--quick"]).contains("unknown flag"));
    }

    #[test]
    fn client_builds_wire_requests() {
        let Command::Client { socket, request } = parse_ok(&["client", "ping"]) else {
            panic!("client command")
        };
        assert_eq!(socket, None);
        assert_eq!(request.kind, "ping");
        assert_eq!(request.config, 1, "wire config is 1-based");

        let Command::Client { request, .. } = parse_ok(&[
            "client", "predict", "gamess,lbm", "--config", "3", "--quick", "--subscribe",
            "--bandwidth", "0.05",
        ]) else {
            panic!("client command")
        };
        assert_eq!(request.kind, "predict");
        assert_eq!(request.mix, "gamess,lbm");
        assert_eq!(request.config, 3);
        assert!(request.quick && request.subscribe);
        assert_eq!(request.bandwidth, Some(0.05));

        let Command::Client { request, .. } = parse_ok(&[
            "client", "campaign", "--cores", "4", "--configs", "1,6", "--sample", "100",
            "--seed", "9", "--shard-size", "8", "--trials", "50",
        ]) else {
            panic!("client command")
        };
        assert_eq!(request.kind, "campaign");
        assert_eq!(request.cores, 4);
        assert_eq!(request.configs, "1,6");
        assert_eq!((request.sample, request.seed), (100, 9));
        assert_eq!((request.shard_size, request.trials), (8, 50));

        assert!(parse_err(&["client"]).contains("request kind"));
        assert!(parse_err(&["client", "frobnicate"]).contains("unknown client request"));
        assert!(parse_err(&["client", "predict"]).contains("expects a mix"));
    }

    #[test]
    fn unknown_flags_and_commands_are_rejected() {
        assert!(parse_err(&["list", "--bogus", "1"]).contains("unknown flag"));
        assert!(parse_err(&["frobnicate"]).contains("unknown command"));
    }
}
