//! `mppm-cli` — command-line interface to the MPPM toolkit.
//!
//! ```text
//! mppm-cli list                         # the 29-benchmark suite, profiled
//! mppm-cli predict gamess,gamess,hmmer,soplex
//! mppm-cli simulate gamess,lbm --config 5
//! mppm-cli count 8                      # how many 8-program mixes exist
//! mppm-cli record gcc --out gcc.trace   # binary trace capture
//! ```
//!
//! Profiles and simulations are cached under `target/mppm-store`, shared
//! with the experiment binaries.

mod args;
mod error;

use args::{parse, Command, ContentionKind, USAGE};
use error::CliError;
use mppm::classify::{classify, Thresholds};
use mppm::mix::count_mixes;
use mppm::{
    ContentionModel, FoaModel, Mppm, MppmConfig, PartitionModel, Prediction, ProbModel,
    SdcCompetitionModel, SingleCoreProfile,
};
use mppm_campaign::{
    design_table, histogram_table, stability_table, write_csvs, AggregateOptions, Campaign,
    CampaignSpec, MixSource,
};
use mppm_obs::{JsonlSink, Observer, ProgressSink, Sink};
use mppm_experiments::table::{f3, Table};
use mppm_experiments::{Context, Scale, Store};
use mppm_sim::{llc_configs, MachineConfig};
use mppm_trace::{suite, RecordedTrace, TraceGeometry, TraceStream};

fn main() {
    // When re-executed as a campaign worker (`--workers N` fan-out),
    // serve shards over stdin/stdout and exit — never parse argv.
    mppm_campaign::maybe_serve();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv) {
        Ok(cmd) => {
            if let Err(e) = run(cmd) {
                eprintln!("error: {e}");
                std::process::exit(e.exit_code());
            }
        }
        Err(e) => {
            // Usage errors keep the conventional exit code 2.
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn geometry(quick: bool) -> TraceGeometry {
    if quick {
        TraceGeometry::new(50_000, 20)
    } else {
        TraceGeometry::default()
    }
}

fn machine(config: usize) -> MachineConfig {
    MachineConfig::baseline().with_llc(llc_configs()[config])
}

fn resolve_mix(names: &[String]) -> Result<Vec<&'static mppm_trace::BenchmarkSpec>, CliError> {
    names
        .iter()
        .map(|n| {
            suite::benchmark(n).ok_or_else(|| {
                CliError::Invalid(format!(
                    "unknown benchmark `{n}`; `mppm-cli list` shows the suite"
                ))
            })
        })
        .collect()
}

fn profiles_for(
    store: &Store,
    specs: &[&mppm_trace::BenchmarkSpec],
    machine: &MachineConfig,
    geometry: TraceGeometry,
) -> Vec<SingleCoreProfile> {
    specs.iter().map(|s| store.profile(s, machine, geometry)).collect()
}

fn predict_with_kind(
    profiles: &[SingleCoreProfile],
    kind: &ContentionKind,
    bandwidth: Option<f64>,
) -> Result<Prediction, CliError> {
    let refs: Vec<&SingleCoreProfile> = profiles.iter().collect();
    let config = MppmConfig { bandwidth, ..MppmConfig::default() };
    fn go<M: ContentionModel>(
        cfg: MppmConfig,
        m: M,
        refs: &[&SingleCoreProfile],
    ) -> Result<Prediction, CliError> {
        Ok(Mppm::new(cfg, m).predict(refs)?)
    }
    match kind {
        ContentionKind::Foa => go(config, FoaModel, &refs),
        ContentionKind::SdcCompetition => go(config, SdcCompetitionModel, &refs),
        ContentionKind::Prob => go(config, ProbModel, &refs),
        ContentionKind::Partition(ways) => go(config, PartitionModel::new(ways.clone()), &refs),
    }
}

fn print_prediction(pred: &Prediction) {
    let mut t = Table::new(&["program", "CPI isolated", "CPI multi-core", "slowdown"]);
    for (((name, sc), mc), slow) in pred
        .names()
        .iter()
        .zip(pred.cpi_sc())
        .zip(pred.cpi_mc())
        .zip(pred.slowdowns())
    {
        t.row(vec![name.clone(), f3(*sc), f3(*mc), f3(*slow)]);
    }
    println!("{}", t.render());
    println!(
        "STP {:.3} (of {} ideal)   ANTT {:.3}   ({} model iterations)",
        pred.stp(),
        pred.names().len(),
        pred.antt(),
        pred.steps()
    );
}

fn run(cmd: Command) -> Result<(), CliError> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Lint { deny, json, only, exclude } => {
            let root = std::env::current_dir()
                .ok()
                .and_then(|cwd| mppm_analyze::find_workspace_root(&cwd))
                .ok_or(CliError::Invalid(
                    "could not locate the workspace root (run from inside the repo)".into(),
                ))?;
            // Rule names were validated at parse time; re-validation here
            // only guards direct construction.
            let filter = mppm_analyze::RuleFilter::new(&only, &exclude)
                .map_err(CliError::Invalid)?;
            let opts = mppm_analyze::AnalyzeOptions {
                filter,
                cache: Some(root.join("target/analyze-facts.cache")),
            };
            let analysis = mppm_analyze::analyze_workspace_opts(&root, &opts)
                .map_err(|e| CliError::Invalid(format!("analyzing {}: {e}", root.display())))?;
            let report = if json {
                mppm_analyze::report::json(&analysis)
            } else {
                mppm_analyze::report::human(&analysis)
            };
            print!("{report}");
            if deny && !analysis.is_clean() {
                return Err(CliError::Invalid(format!(
                    "{} lint violation(s)",
                    analysis.violations.len()
                )));
            }
            Ok(())
        }
        Command::Serve { socket, store } => {
            let config = mppm_server::ServerConfig {
                store_root: store.map(std::path::PathBuf::from),
                ..mppm_server::ServerConfig::new(
                    socket
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(mppm_server::default_socket_path),
                )
            };
            eprintln!("mppmd: listening on {}", config.socket.display());
            mppm_server::serve(&config).map_err(CliError::from)
        }
        Command::Client { socket, request } => {
            let socket = socket
                .map(std::path::PathBuf::from)
                .unwrap_or_else(mppm_server::default_socket_path);
            let mut client = mppm_server::Client::connect(&socket)?;
            let mut request = request;
            let response = client.request(&mut request)?;
            for event in &response.events {
                eprintln!("event: {}", serde_json::to_string(event).unwrap_or_default());
            }
            eprintln!(
                "{}: cached={}{}",
                response.kind,
                response.cached,
                response
                    .meta
                    .as_ref()
                    .map(|m| format!(" meta={}", serde_json::to_string(m).unwrap_or_default()))
                    .unwrap_or_default()
            );
            // Stdout carries exactly the deterministic payload, so two
            // invocations are diffable.
            println!(
                "{}",
                serde_json::to_string_pretty(&response.result)
                    .map_err(|e| CliError::Invalid(format!("unprintable response: {e}")))?
            );
            Ok(())
        }
        Command::Count { cores } => {
            let n = suite::spec_suite().len();
            let count =
                count_mixes(n, cores).map_err(|e| CliError::Invalid(e.to_string()))?;
            println!("{count} distinct {cores}-program workloads over the {n}-benchmark suite");
            Ok(())
        }
        Command::List { config, quick } => {
            let store = Store::open_default()?;
            let machine = machine(config);
            let g = geometry(quick);
            eprintln!(
                "profiling the suite on LLC config #{} ({}KB {}-way, {} cycles)...",
                config + 1,
                machine.llc.size_bytes / 1024,
                machine.llc.assoc,
                machine.llc.latency
            );
            let mut t = Table::new(&[
                "benchmark",
                "CPI",
                "mem CPI",
                "LLC acc/ki",
                "LLC miss/ki",
                "class",
            ]);
            for spec in suite::spec_suite() {
                let p = store.profile(spec, &machine, g);
                t.row(vec![
                    p.name.clone(),
                    f3(p.cpi_sc()),
                    f3(p.cpi_mem()),
                    format!("{:.1}", p.apki()),
                    format!("{:.2}", p.mpki()),
                    classify(&p, Thresholds::default()).to_string(),
                ]);
            }
            println!("{}", t.render());
            Ok(())
        }
        Command::Predict { mix, config, quick, contention, bandwidth } => {
            let store = Store::open_default()?;
            let mut m = machine(config);
            if let Some(bw) = bandwidth {
                m = m.with_mem_bandwidth(bw);
            }
            if let ContentionKind::Partition(ways) = &contention {
                if ways.contains(&0) {
                    return Err(CliError::Invalid(
                        "every program needs at least one way".into(),
                    ));
                }
                let total: u32 = ways.iter().sum();
                if total != m.llc.assoc {
                    return Err(CliError::Invalid(format!(
                        "--partition ways sum to {total} but LLC config #{} has {} ways",
                        config + 1,
                        m.llc.assoc
                    )));
                }
            }
            let specs = resolve_mix(&mix)?;
            let profiles = profiles_for(&store, &specs, &m, geometry(quick));
            let pred = predict_with_kind(&profiles, &contention, bandwidth)?;
            print_prediction(&pred);
            Ok(())
        }
        Command::Simulate { mix, config, quick } => {
            let store = Store::open_default()?;
            let m = machine(config);
            let g = geometry(quick);
            let specs = resolve_mix(&mix)?;
            let profiles = profiles_for(&store, &specs, &m, g);
            let cpi_sc: Vec<f64> = profiles.iter().map(SingleCoreProfile::cpi_sc).collect();
            let names: Vec<&str> = mix.iter().map(String::as_str).collect();
            eprintln!("running the detailed simulator (cached on re-runs)...");
            let record = store.simulate(&names, &cpi_sc, &m, g);
            let pred = predict_with_kind(&profiles, &ContentionKind::Foa, None)?;

            let mut t = Table::new(&["program", "measured CPI", "predicted CPI", "err"]);
            // The record is in canonical (sorted) order; align by name
            // occurrence.
            let mut used = vec![false; record.names.len()];
            for (name, pred_cpi) in pred.names().iter().zip(pred.cpi_mc()) {
                let slot = record
                    .names
                    .iter()
                    .enumerate()
                    .position(|(i, n)| n == name && !used[i])
                    .ok_or_else(|| {
                        CliError::Invalid(format!(
                            "cached record at {:?} does not cover `{name}`; \
                             delete target/mppm-store and re-run",
                            record.names
                        ))
                    })?;
                used[slot] = true;
                let meas = record.cpi_mc[slot];
                t.row(vec![
                    name.clone(),
                    f3(meas),
                    f3(*pred_cpi),
                    format!("{:+.1}%", (pred_cpi - meas) / meas * 100.0),
                ]);
            }
            println!("{}", t.render());
            println!(
                "measured STP {:.3} ANTT {:.3} | predicted STP {:.3} ANTT {:.3}",
                record.stp(),
                record.antt(),
                pred.stp(),
                pred.antt()
            );
            println!("(detailed simulation took {:.2}s)", record.sim_seconds);
            Ok(())
        }
        Command::Record { benchmark, out, quick } => {
            let spec = suite::benchmark(&benchmark)
                .ok_or_else(|| format!("unknown benchmark `{benchmark}`"))?;
            let g = geometry(quick);
            let mut stream = TraceStream::new(spec.clone(), g);
            let trace = RecordedTrace::capture(&mut stream, g.trace_insns());
            let bytes = trace.to_bytes();
            mppm_experiments::atomic_write_bytes(std::path::Path::new(&out), &bytes)?;
            println!(
                "recorded {} instructions ({} items, {} bytes) to {out}",
                trace.insns(),
                trace.items().len(),
                bytes.len()
            );
            Ok(())
        }
        Command::Campaign {
            cores,
            configs,
            sample,
            seed,
            shard_size,
            trials,
            quick,
            trace,
            progress,
            workers,
            journal,
        } => {
            let scale = if quick { Scale::Quick } else { Scale::Full };
            let ctx = Context::new(scale);
            let spec = CampaignSpec {
                cores,
                designs: configs,
                source: match sample {
                    Some(count) => MixSource::Stratified { count, seed },
                    None => MixSource::Exhaustive,
                },
                shard_size,
            };
            let options = AggregateOptions { stability_trials: trials, ..Default::default() };
            let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
            if progress {
                sinks.push(Box::new(ProgressSink));
            }
            if let Some(path) = &trace {
                sinks.push(Box::new(JsonlSink::new(path)));
            }
            let observer =
                if sinks.is_empty() { Observer::disabled() } else { Observer::with_sinks(sinks) };
            let result = {
                let root = observer.root("campaign");
                let mut campaign =
                    Campaign::new(&spec).options(&options).workers(workers).observer(&root);
                if let Some(dir) = &journal {
                    campaign = campaign.journal(std::path::Path::new(dir));
                }
                campaign.run(&ctx)?
            };
            observer.finish()?;
            if let Some(path) = &trace {
                println!("wrote JSONL trace to {path}");
            }
            println!(
                "campaign {}: {} mixes x {} designs ({} cores)\n",
                result.plan_id,
                result.mixes,
                result.designs.len(),
                result.cores
            );
            println!("{}", design_table(&result).render());
            println!("{}", histogram_table(&result).render());
            println!("{}", stability_table(&result).render());
            println!(
                "shards: {} total, {} resumed, {} computed",
                result.stats.total_shards, result.stats.resumed_shards, result.stats.computed_shards
            );
            if let Some(tp) = result.stats.throughput() {
                println!(
                    "throughput: {tp:.1} mixes/s ({} evaluations in {:.2}s)",
                    result.stats.evaluated_mixes, result.stats.compute_seconds
                );
            }
            // Full-scale output owns results/; quick smoke runs land in
            // target/quick-results/ to protect the committed bundle.
            let dir = mppm_experiments::table::results_dir_for(scale);
            write_csvs(&result, &dir, &mppm_campaign::RunProvenance::current(scale))?;
            println!("wrote campaign CSVs to {}", dir.display());
            Ok(())
        }
    }
}
