//! The CLI's top-level error type and its process exit codes.
//!
//! Every failure path in `run` converts (usually via `From`) into one
//! [`CliError`] variant, and each variant maps to a distinct exit code
//! so scripts and CI can tell *why* an invocation failed without
//! parsing stderr:
//!
//! | code | meaning                                          |
//! |------|--------------------------------------------------|
//! | 1    | invalid input (unknown benchmark, bad partition) |
//! | 2    | usage / argument parse error (set in `main`)     |
//! | 3    | model error ([`mppm::ModelError`])               |
//! | 4    | campaign error ([`mppm_campaign::CampaignError`])|
//! | 5    | store / trace / CSV I/O error                    |
//! | 6    | server error (`mppmd` / `client` transport, daemon) |

use std::fmt;

/// Everything the `mppm-cli` commands can fail with.
#[derive(Debug)]
pub enum CliError {
    /// User input that parsed but does not make sense (unknown
    /// benchmark, inconsistent partition, ...).
    Invalid(String),
    /// The analytical model rejected the request.
    Model(mppm::ModelError),
    /// A campaign failed (spec validation, journal I/O, mix space).
    Campaign(mppm_campaign::CampaignError),
    /// Filesystem I/O: the store, a recorded trace, CSVs, a JSONL trace.
    Io(std::io::Error),
    /// The `mppmd` daemon or its client failed: bind/connect errors,
    /// protocol violations, or daemon-reported error frames.
    Server(mppm_server::ServerError),
}

impl CliError {
    /// The process exit code for this failure class.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Invalid(_) => 1,
            CliError::Model(_) => 3,
            // A wire-version mismatch between coordinator and campaign
            // workers is a protocol failure, same class as the daemon's.
            CliError::Campaign(mppm_campaign::CampaignError::Protocol(_)) => 6,
            CliError::Campaign(_) => 4,
            CliError::Io(_) => 5,
            CliError::Server(_) => 6,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Invalid(msg) => write!(f, "{msg}"),
            CliError::Model(e) => write!(f, "model error: {e}"),
            CliError::Campaign(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Server(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Invalid(_) => None,
            CliError::Model(e) => Some(e),
            CliError::Campaign(e) => Some(e),
            CliError::Io(e) => Some(e),
            CliError::Server(e) => Some(e),
        }
    }
}

impl From<mppm::ModelError> for CliError {
    fn from(e: mppm::ModelError) -> Self {
        CliError::Model(e)
    }
}

impl From<mppm_campaign::CampaignError> for CliError {
    fn from(e: mppm_campaign::CampaignError) -> Self {
        CliError::Campaign(e)
    }
}

impl From<mppm_server::ServerError> for CliError {
    fn from(e: mppm_server::ServerError) -> Self {
        CliError::Server(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Invalid(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Invalid(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        let io = CliError::from(std::io::Error::new(std::io::ErrorKind::Other, "disk"));
        let cases = [
            (CliError::Invalid("bad".into()).exit_code(), 1),
            (CliError::Model(mppm::ModelError::EmptyWorkload).exit_code(), 3),
            (
                CliError::Campaign(mppm_campaign::CampaignError::InvalidSpec("x".into()))
                    .exit_code(),
                4,
            ),
            (io.exit_code(), 5),
            (
                CliError::Server(mppm_server::ServerError::Protocol("x".into())).exit_code(),
                6,
            ),
            (
                CliError::Campaign(mppm_campaign::CampaignError::Protocol(
                    mppm_campaign::ProtocolMismatch { found: 0, expected: 1 },
                ))
                .exit_code(),
                6,
            ),
        ];
        for (got, want) in cases {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn display_carries_the_cause() {
        let e = CliError::Model(mppm::ModelError::EmptyWorkload);
        assert!(e.to_string().contains("model error"));
        let e = CliError::from("unknown benchmark `nope`".to_string());
        assert_eq!(e.to_string(), "unknown benchmark `nope`");
        let e = CliError::from(mppm_server::ServerError::Remote {
            code: "campaign".into(),
            message: "journal I/O".into(),
        });
        assert!(e.to_string().contains("campaign"), "{e}");
    }
}
